"""Log blocks.

In Alibaba Cloud, applications write raw text logs into 64 MB blocks and the
blocks are compressed in the background (paper §2).  A :class:`LogBlock` is
the unit every system in this repo compresses and queries independently;
:func:`split_lines` performs the byte-budgeted splitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

#: The production block size.  Tests and laptop-scale benchmarks pass a much
#: smaller budget; the splitting logic is identical.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


def block_name(block_id: int) -> str:
    """The canonical archive-store name of a compressed block.

    Every producer — batch compression, the streaming pipeline, the
    cluster nodes — must agree on this so archives stay interchangeable.
    """
    return f"block-{block_id:08d}.lgcb"


@dataclass
class LogBlock:
    """An ordered slice of raw log lines.

    ``first_line_id`` is the global index of the block's first line in the
    originating stream; reconstruction uses it to restore the total order of
    entries across blocks without needing timestamps.
    """

    block_id: int
    first_line_id: int
    lines: List[str] = field(default_factory=list)

    @property
    def raw_bytes(self) -> int:
        """Size of the block's raw text including newline separators."""
        return sum(len(line) for line in self.lines) + len(self.lines)

    @property
    def num_lines(self) -> int:
        return len(self.lines)

    def text(self) -> str:
        """The raw text of the block, one line per entry."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")


def split_lines(
    lines: Iterable[str], max_bytes: int = DEFAULT_BLOCK_BYTES
) -> Iterator[LogBlock]:
    """Split a line stream into :class:`LogBlock` s of at most *max_bytes*.

    A block always contains at least one line even if that line alone
    exceeds the budget (a log entry is never split across blocks).
    """
    if max_bytes <= 0:
        raise ValueError("max_bytes must be positive")
    block_id = 0
    first_line_id = 0
    current: List[str] = []
    current_bytes = 0
    line_id = 0
    for line_id, line in enumerate(lines):
        cost = len(line) + 1
        if current and current_bytes + cost > max_bytes:
            yield LogBlock(block_id, first_line_id, current)
            block_id += 1
            first_line_id = line_id
            current = []
            current_bytes = 0
        current.append(line)
        current_bytes += cost
    if current:
        yield LogBlock(block_id, first_line_id, current)


def block_from_text(text: str, block_id: int = 0, first_line_id: int = 0) -> LogBlock:
    """Build a single block from raw text (splitting on newlines)."""
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return LogBlock(block_id, first_line_id, lines)
