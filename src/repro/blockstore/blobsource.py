"""Byte-range access to stored blobs (the lazy-I/O substrate).

A :class:`BlobSource` is the one interface the capsule layer needs from
storage: ``read(offset, length)`` and ``size()``.  Two implementations
exist — :class:`BytesBlobSource` wraps an already-fetched buffer (eager
deserialization, pinned boxes, tests) and :class:`StoreBlobSource`
forwards to :meth:`ArchiveStore.get_range`, so a capsule payload is only
pulled off the store the first time somebody asks for its bytes.

Both are *strict*: a read past the end of the blob raises
:class:`~repro.common.errors.FormatError` instead of returning a short
slice, so a truncated archive surfaces as a format error at the exact
extent that is missing, never as a garbage payload downstream.

:func:`coalesce_extents` merges sorted byte extents whose gaps are below
a threshold — the executor uses it to batch the capsule payloads a plan
actually needs into one ranged read per contiguous run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..common.errors import FormatError
from ..obs import ledger as ledger_channel

#: One byte extent: (offset, length).
Extent = Tuple[int, int]


class BlobSource:
    """Random access to one stored blob's bytes."""

    name: str = "<blob>"

    def read(self, offset: int, length: int) -> bytes:
        """Exactly *length* bytes at *offset*; FormatError when impossible."""
        raise NotImplementedError

    def size(self) -> int:
        """Total size of the blob in bytes."""
        raise NotImplementedError

    @property
    def bytes_read(self) -> int:
        """Bytes fetched through this source so far (observability)."""
        return 0


class BytesBlobSource(BlobSource):
    """A BlobSource over an in-memory buffer (already paid for)."""

    def __init__(self, data: bytes, name: str = "<bytes>"):
        self._data = data
        self.name = name

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0 or offset + length > len(self._data):
            raise FormatError(
                f"{self.name}: read [{offset}, {offset + length}) out of "
                f"range of {len(self._data)}-byte blob"
            )
        return self._data[offset : offset + length]

    def size(self) -> int:
        return len(self._data)


class StoreBlobSource(BlobSource):
    """A BlobSource issuing ranged reads against an archive store."""

    def __init__(self, store: object, name: str):
        self.store = store
        self.name = name
        self._size: Optional[int] = None
        self._bytes_read = 0

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0 or offset + length > self.size():
            raise FormatError(
                f"{self.name}: read [{offset}, {offset + length}) out of "
                f"range of {self.size()}-byte blob"
            )
        data = self.store.get_range(self.name, offset, length)  # type: ignore[attr-defined]
        if len(data) != length:
            raise FormatError(
                f"{self.name}: ranged read returned {len(data)} byte(s), "
                f"expected {length} (truncated blob?)"
            )
        self._bytes_read += length
        # Charged with the exact length that store.get_range adds to
        # loggrep_store_range_read_bytes_total, so an ANALYZE ledger
        # reconciles with the global metric byte for byte.
        ledger_channel.charge_read(length)
        return data

    def size(self) -> int:
        if self._size is None:
            self._size = int(self.store.size(self.name))  # type: ignore[attr-defined]
        return self._size

    @property
    def bytes_read(self) -> int:
        return self._bytes_read


def coalesce_extents(extents: Sequence[Extent], gap: int = 0) -> List[Extent]:
    """Merge extents whose inter-extent gap is at most *gap* bytes.

    Input order does not matter; the result is sorted and disjoint.
    Over-reading the small gaps trades a few wasted bytes for one ranged
    read per run, which is the right trade everywhere a read has a fixed
    cost (disk seek, object-store request).
    """
    if not extents:
        return []
    ordered = sorted(extents)
    merged: List[Extent] = [ordered[0]]
    for offset, length in ordered[1:]:
        last_off, last_len = merged[-1]
        if offset <= last_off + last_len + gap:
            end = max(last_off + last_len, offset + length)
            merged[-1] = (last_off, end - last_off)
        else:
            merged.append((offset, length))
    return merged
