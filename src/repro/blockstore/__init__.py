"""Log-block splitting and archive blob storage."""

from .block import DEFAULT_BLOCK_BYTES, LogBlock, block_from_text, split_lines
from .store import ArchiveStore, MemoryStore

__all__ = [
    "LogBlock",
    "split_lines",
    "block_from_text",
    "DEFAULT_BLOCK_BYTES",
    "ArchiveStore",
    "MemoryStore",
]
