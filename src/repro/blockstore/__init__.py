"""Log-block splitting, archive blob storage and ranged-I/O helpers."""

from .blobsource import BlobSource, BytesBlobSource, StoreBlobSource, coalesce_extents
from .block import DEFAULT_BLOCK_BYTES, LogBlock, block_from_text, split_lines
from .index import INDEX_AUX_NAME, ArchiveIndex, BlockSummary, VectorSummary
from .remote import FaultProfile, RemoteStore, RemoteStoreError
from .store import ArchiveStore, MemoryStore

__all__ = [
    "LogBlock",
    "split_lines",
    "block_from_text",
    "DEFAULT_BLOCK_BYTES",
    "ArchiveStore",
    "MemoryStore",
    "RemoteStore",
    "RemoteStoreError",
    "FaultProfile",
    "BlobSource",
    "BytesBlobSource",
    "StoreBlobSource",
    "coalesce_extents",
    "ArchiveIndex",
    "BlockSummary",
    "VectorSummary",
    "INDEX_AUX_NAME",
]
