"""Filesystem archive store.

Every system in this repo (LogGrep, LogGrep-SP, CLP, mini-ES, gzip+grep)
persists one opaque byte blob per compressed log block.  The store measures
exactly what the cost model charges for: total stored bytes.

Beyond whole-blob ``get``, the store serves **byte ranges**
(:meth:`ArchiveStore.get_range`) so the query path can fetch a box header,
its Bloom section or a single capsule payload without paying for the rest
of the block — cloud storage charges per byte read, and ranged GETs are
how that charge is kept proportional to query selectivity.  Ranged reads
are seek+read by default; ``enable_mmap()`` (config ``store_mmap``) maps
blobs instead, which wins when the same block is range-read many times.

**Auxiliary blobs** (:meth:`put_aux` / :meth:`get_aux`) hold derived
sidecar data — currently the per-archive prune index.  They live next to
the blocks as dot-prefixed files but are *not* part of the block
namespace: ``names()``, ``items()`` and ``total_bytes()`` ignore them, so
block counting and the cost model's stored-bytes measure are unaffected,
and deleting them only costs a rebuild.

An in-memory variant is provided for tests and benchmarks that should not
touch the disk.
"""

from __future__ import annotations

import mmap
import os
import threading
from typing import Dict, Iterator, List, Tuple

from ..common.errors import FormatError
from ..obs.metrics import get_registry

_READS = get_registry().counter(
    "loggrep_store_reads_total", "Blob reads from the archive store"
)
_READ_BYTES = get_registry().counter(
    "loggrep_store_read_bytes_total", "Bytes read from the archive store"
)
_WRITES = get_registry().counter(
    "loggrep_store_writes_total", "Blob writes to the archive store"
)
_WRITE_BYTES = get_registry().counter(
    "loggrep_store_write_bytes_total", "Bytes written to the archive store"
)
_RANGE_READS = get_registry().counter(
    "loggrep_store_range_reads_total", "Ranged blob reads from the archive store"
)
_RANGE_READ_BYTES = get_registry().counter(
    "loggrep_store_range_read_bytes_total",
    "Bytes read through ranged reads (also counted in read_bytes)",
)


class ArchiveStore:
    """Named blob storage rooted at a directory."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._use_mmap = False
        self._mmaps: Dict[str, Tuple[object, mmap.mmap]] = {}
        self._mmap_lock = threading.Lock()

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid archive name {name!r}")
        return os.path.join(self.root, name)

    def _aux_path(self, name: str) -> str:
        # Aux blobs reuse the block-name validation, then hide behind a
        # leading dot so names()/total_bytes() never see them.
        return os.path.join(self.root, "." + os.path.basename(self._path(name)))

    def put(self, name: str, data: bytes) -> None:
        _WRITES.inc()
        _WRITE_BYTES.inc(len(data))
        self._drop_mmap(name)
        with open(self._path(name), "wb") as fh:
            fh.write(data)

    def get(self, name: str) -> bytes:
        _READS.inc()
        with open(self._path(name), "rb") as fh:
            data = fh.read()
        _READ_BYTES.inc(len(data))
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        """Exactly *length* bytes of blob *name* starting at *offset*.

        Short reads (offset/length past the end of the blob) raise
        :class:`FormatError`: a ranged reader asking for bytes that do not
        exist is either a corrupt TOC or a truncated blob, and both must
        surface rather than yield a silent partial payload.
        """
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range [{offset}, +{length})")
        _RANGE_READS.inc()
        if self._use_mmap:
            mapped = self._mmap_of(name)
            data = bytes(mapped[offset : offset + length])
        else:
            with open(self._path(name), "rb") as fh:
                fh.seek(offset)
                data = fh.read(length)
        if len(data) != length:
            raise FormatError(
                f"{name}: range [{offset}, +{length}) past end of blob"
            )
        _RANGE_READ_BYTES.inc(length)
        _READ_BYTES.inc(length)
        return data

    def size(self, name: str) -> int:
        """Stored size of one blob in bytes (no read charged)."""
        return os.path.getsize(self._path(name))

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def names(self) -> List[str]:
        return sorted(n for n in os.listdir(self.root) if not n.startswith("."))

    def items(self) -> Iterator[tuple]:
        for name in self.names():
            yield name, self.get(name)

    def total_bytes(self) -> int:
        return sum(
            os.path.getsize(os.path.join(self.root, name)) for name in self.names()
        )

    def delete(self, name: str) -> None:
        self._drop_mmap(name)
        os.remove(self._path(name))

    # ------------------------------------------------------------------
    # auxiliary (sidecar) blobs — derived data, outside the block namespace
    # ------------------------------------------------------------------
    def put_aux(self, name: str, data: bytes) -> None:
        with open(self._aux_path(name), "wb") as fh:
            fh.write(data)

    def get_aux(self, name: str) -> bytes:
        with open(self._aux_path(name), "rb") as fh:
            return fh.read()

    def aux_exists(self, name: str) -> bool:
        return os.path.exists(self._aux_path(name))

    def delete_aux(self, name: str) -> None:
        os.remove(self._aux_path(name))

    # ------------------------------------------------------------------
    # mmap-backed ranged reads (config.store_mmap)
    # ------------------------------------------------------------------
    def enable_mmap(self) -> None:
        """Serve ranged reads from memory-mapped blobs.

        Maps are created on first ranged access per blob and dropped when
        the blob is rewritten or deleted.  Whole-blob ``get`` is
        unaffected.
        """
        self._use_mmap = True

    def disable_mmap(self) -> None:
        self._use_mmap = False
        with self._mmap_lock:
            for fh, mapped in self._mmaps.values():
                mapped.close()
                fh.close()  # type: ignore[attr-defined]
            self._mmaps.clear()

    def _mmap_of(self, name: str) -> mmap.mmap:
        with self._mmap_lock:
            entry = self._mmaps.get(name)
            if entry is None:
                fh = open(self._path(name), "rb")
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                self._mmaps[name] = (fh, mapped)
                return mapped
            return entry[1]

    def _drop_mmap(self, name: str) -> None:
        with self._mmap_lock:
            entry = self._mmaps.pop(name, None)
            if entry is not None:
                fh, mapped = entry
                mapped.close()
                fh.close()  # type: ignore[attr-defined]


class MemoryStore(ArchiveStore):
    """Drop-in ArchiveStore that keeps blobs in a dict."""

    def __init__(self):  # pylint: disable=super-init-not-called
        self._blobs: Dict[str, bytes] = {}
        self._aux: Dict[str, bytes] = {}
        self.root = "<memory>"
        self._use_mmap = False

    def put(self, name: str, data: bytes) -> None:
        _WRITES.inc()
        _WRITE_BYTES.inc(len(data))
        self._blobs[name] = bytes(data)

    def get(self, name: str) -> bytes:
        data = self._blobs[name]
        _READS.inc()
        _READ_BYTES.inc(len(data))
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range [{offset}, +{length})")
        blob = self._blobs[name]
        _RANGE_READS.inc()
        if offset + length > len(blob):
            raise FormatError(
                f"{name}: range [{offset}, +{length}) past end of blob"
            )
        _RANGE_READ_BYTES.inc(length)
        _READ_BYTES.inc(length)
        return blob[offset : offset + length]

    def size(self, name: str) -> int:
        return len(self._blobs[name])

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def names(self) -> List[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def delete(self, name: str) -> None:
        del self._blobs[name]

    def put_aux(self, name: str, data: bytes) -> None:
        self._aux[name] = bytes(data)

    def get_aux(self, name: str) -> bytes:
        return self._aux[name]

    def aux_exists(self, name: str) -> bool:
        return name in self._aux

    def delete_aux(self, name: str) -> None:
        del self._aux[name]

    def enable_mmap(self) -> None:  # memory blobs are already "mapped"
        pass

    def disable_mmap(self) -> None:
        pass
