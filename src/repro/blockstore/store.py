"""Filesystem archive store.

Every system in this repo (LogGrep, LogGrep-SP, CLP, mini-ES, gzip+grep)
persists one opaque byte blob per compressed log block.  The store measures
exactly what the cost model charges for: total stored bytes.

An in-memory variant is provided for tests and benchmarks that should not
touch the disk.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List

from ..obs.metrics import get_registry

_READS = get_registry().counter(
    "loggrep_store_reads_total", "Blob reads from the archive store"
)
_READ_BYTES = get_registry().counter(
    "loggrep_store_read_bytes_total", "Bytes read from the archive store"
)
_WRITES = get_registry().counter(
    "loggrep_store_writes_total", "Blob writes to the archive store"
)
_WRITE_BYTES = get_registry().counter(
    "loggrep_store_write_bytes_total", "Bytes written to the archive store"
)


class ArchiveStore:
    """Named blob storage rooted at a directory."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid archive name {name!r}")
        return os.path.join(self.root, name)

    def put(self, name: str, data: bytes) -> None:
        _WRITES.inc()
        _WRITE_BYTES.inc(len(data))
        with open(self._path(name), "wb") as fh:
            fh.write(data)

    def get(self, name: str) -> bytes:
        _READS.inc()
        with open(self._path(name), "rb") as fh:
            data = fh.read()
        _READ_BYTES.inc(len(data))
        return data

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def names(self) -> List[str]:
        return sorted(os.listdir(self.root))

    def items(self) -> Iterator[tuple]:
        for name in self.names():
            yield name, self.get(name)

    def total_bytes(self) -> int:
        return sum(
            os.path.getsize(os.path.join(self.root, name)) for name in self.names()
        )

    def delete(self, name: str) -> None:
        os.remove(self._path(name))


class MemoryStore(ArchiveStore):
    """Drop-in ArchiveStore that keeps blobs in a dict."""

    def __init__(self):  # pylint: disable=super-init-not-called
        self._blobs: Dict[str, bytes] = {}
        self.root = "<memory>"

    def put(self, name: str, data: bytes) -> None:
        _WRITES.inc()
        _WRITE_BYTES.inc(len(data))
        self._blobs[name] = bytes(data)

    def get(self, name: str) -> bytes:
        data = self._blobs[name]
        _READS.inc()
        _READ_BYTES.inc(len(data))
        return data

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def names(self) -> List[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def delete(self, name: str) -> None:
        del self._blobs[name]
