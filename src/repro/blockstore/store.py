"""Filesystem archive store.

Every system in this repo (LogGrep, LogGrep-SP, CLP, mini-ES, gzip+grep)
persists one opaque byte blob per compressed log block.  The store measures
exactly what the cost model charges for: total stored bytes.

An in-memory variant is provided for tests and benchmarks that should not
touch the disk.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List


class ArchiveStore:
    """Named blob storage rooted at a directory."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ValueError(f"invalid archive name {name!r}")
        return os.path.join(self.root, name)

    def put(self, name: str, data: bytes) -> None:
        with open(self._path(name), "wb") as fh:
            fh.write(data)

    def get(self, name: str) -> bytes:
        with open(self._path(name), "rb") as fh:
            return fh.read()

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def names(self) -> List[str]:
        return sorted(os.listdir(self.root))

    def items(self) -> Iterator[tuple]:
        for name in self.names():
            yield name, self.get(name)

    def total_bytes(self) -> int:
        return sum(
            os.path.getsize(os.path.join(self.root, name)) for name in self.names()
        )

    def delete(self, name: str) -> None:
        os.remove(self._path(name))


class MemoryStore(ArchiveStore):
    """Drop-in ArchiveStore that keeps blobs in a dict."""

    def __init__(self):  # pylint: disable=super-init-not-called
        self._blobs: Dict[str, bytes] = {}
        self.root = "<memory>"

    def put(self, name: str, data: bytes) -> None:
        self._blobs[name] = bytes(data)

    def get(self, name: str) -> bytes:
        return self._blobs[name]

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def names(self) -> List[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def delete(self, name: str) -> None:
        del self._blobs[name]
