"""Per-archive prune index: the always-resident synopsis sidecar.

The paper's stamps prove most Capsules irrelevant without decompressing
them (§3.4) — but checking a stamp still required reading the block's
metadata section.  This module lifts the same synopses out of the blocks
into one tiny per-archive sidecar, written at compress/commit time and
loaded once when the archive is opened, so block-level pruning (Bloom
*and* charset-mask) runs with **zero** store reads for pruned blocks.

Per block the index records:

* the block-level trigram Bloom filter bits (when compiled in),
* the **block charset mask**: the union of the template constant-token
  masks, every capsule stamp mask, and the runtime-pattern constant
  masks.  The engine matches keyword fragments *within* rendered tokens
  (template constants, or variable values rendered from capsule values
  and pattern constants), so a fragment whose character classes are not
  subsumed by this union cannot occur in any line of the block — the
  §5.1 stamp check hoisted to block granularity,
* per-vector stamp summaries (group, mask ∪ over the vector's capsules,
  max value length, row count) and the block's line count, for
  diagnostics and future vector-level planning,
* the block's **wall-clock range** (min/max leading timestamp of its raw
  lines, v2 sidecars): blocks are written in arrival order, so a
  ``from_time``/``to_time`` query window prunes whole blocks before any
  Bloom or stamp check — zero store reads for out-of-window blocks.

The sidecar is *derived* data: it lives outside the block namespace (an
auxiliary blob, see :meth:`ArchiveStore.put_aux`), does not count toward
stored bytes, and is rebuilt on the fly for archives that predate it.
An index that disagrees with the archive can only ever cause a missed
prune or a rebuild — never a wrong query result, because pruning is
validated against the same masks the engine enforces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..common import chartypes
from ..common.binio import BinaryReader, BinaryWriter
from ..common.bloom import BloomFilter
from ..common.errors import FormatError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a hard cycle)
    from ..capsule.box import CapsuleBox

#: Auxiliary-blob name of the serialized index within an archive.
INDEX_AUX_NAME = "index.lgix"

MAGIC = b"LGIX"
#: v1: bloom + charset mask + vector stamps; v2 adds the per-block
#: min/max wall-clock timestamp range.  v1 sidecars still load (their
#: time range is simply unknown, so time pruning skips those blocks).
VERSION = 2
_KNOWN_VERSIONS = (1, 2)

#: Timestamps travel as non-negative varint milliseconds; a sentinel u8
#: flag marks blocks with no parseable timestamps.
_TS_SCALE = 1000.0


@dataclass(frozen=True)
class VectorSummary:
    """Stamp synopsis of one encoded vector."""

    group: int
    type_mask: int
    max_len: int
    rows: int


@dataclass
class BlockSummary:
    """Everything block-level pruning needs to know about one block."""

    block_id: int
    first_line_id: int
    num_lines: int
    #: Union of template-constant, capsule-stamp and pattern-constant
    #: masks: the character classes that can occur anywhere in the block.
    type_mask: int
    bloom: Optional[BloomFilter] = None
    vectors: List[VectorSummary] = field(default_factory=list)
    #: Wall-clock range of the block's raw lines (epoch seconds); None
    #: when no line had a parseable timestamp (the block is then never
    #: time-pruned).
    min_ts: Optional[float] = None
    max_ts: Optional[float] = None

    def in_time_range(
        self, from_time: Optional[float], to_time: Optional[float]
    ) -> bool:
        """Could any line of this block fall inside [from_time, to_time]?

        Unknown ranges conservatively overlap everything — pruning may
        only ever skip blocks *proven* disjoint from the window.
        """
        if self.min_ts is None or self.max_ts is None:
            return True
        if from_time is not None and self.max_ts < from_time:
            return False
        if to_time is not None and self.min_ts > to_time:
            return False
        return True

    @classmethod
    def from_box(
        cls, box: "CapsuleBox", lines: Optional[List[str]] = None
    ) -> "BlockSummary":
        from ..capsule.assembler import NominalEncodedVector, RealEncodedVector
        from ..capsule.box import _capsules_of
        from ..runtime.pattern import Const

        mask = 0
        vectors: List[VectorSummary] = []
        for group_idx, group in enumerate(box.groups):
            for token in group.template.tokens:
                if token is not None:
                    mask |= chartypes.type_mask(token)
            for vector in group.vectors:
                vmask = 0
                vmax = 0
                for capsule in _capsules_of(vector):
                    vmask |= capsule.stamp.type_mask
                    vmax = max(vmax, capsule.stamp.max_len)
                if isinstance(vector, RealEncodedVector):
                    consts = 0
                    for element in vector.pattern.elements:
                        if isinstance(element, Const):
                            vmask |= chartypes.type_mask(element.text)
                            consts += len(element.text)
                    # Rendered values concatenate sub-variable values with
                    # the pattern constants.
                    vmax = max(
                        vmax,
                        consts
                        + sum(c.stamp.max_len for c in vector.subvar_capsules),
                    )
                elif isinstance(vector, NominalEncodedVector):
                    for dp in vector.dict_patterns:
                        for element in dp.pattern.elements:
                            if isinstance(element, Const):
                                vmask |= chartypes.type_mask(element.text)
                mask |= vmask
                vectors.append(
                    VectorSummary(group_idx, vmask, vmax, vector.num_rows)
                )
        min_ts: Optional[float] = None
        max_ts: Optional[float] = None
        if lines is not None:
            from ..common.timeparse import time_range_of

            min_ts, max_ts = time_range_of(lines)
        return cls(
            box.block_id, box.first_line_id, box.num_lines, mask,
            box.bloom, vectors, min_ts, max_ts,
        )

    def write(self, writer: BinaryWriter, version: int = VERSION) -> None:
        writer.write_varint(self.block_id)
        writer.write_varint(self.first_line_id)
        writer.write_varint(self.num_lines)
        writer.write_u8(self.type_mask)
        if self.bloom is not None:
            writer.write_u8(1)
            self.bloom.write(writer)
        else:
            writer.write_u8(0)
        writer.write_varint(len(self.vectors))
        for vector in self.vectors:
            writer.write_varint(vector.group)
            writer.write_u8(vector.type_mask)
            writer.write_varint(vector.max_len)
            writer.write_varint(vector.rows)
        if version >= 2:
            # Pre-epoch timestamps cannot ride a varint; treat them as
            # unknown (they only cost a missed prune, never correctness).
            if (
                self.min_ts is not None
                and self.max_ts is not None
                and self.min_ts >= 0.0
            ):
                writer.write_u8(1)
                writer.write_varint(int(self.min_ts * _TS_SCALE))
                writer.write_varint(int(self.max_ts * _TS_SCALE))
            else:
                writer.write_u8(0)

    @classmethod
    def read(cls, reader: BinaryReader, version: int = VERSION) -> "BlockSummary":
        block_id = reader.read_varint()
        first_line_id = reader.read_varint()
        num_lines = reader.read_varint()
        type_mask = reader.read_u8()
        bloom = BloomFilter.read(reader) if reader.read_u8() else None
        vectors = [
            VectorSummary(
                reader.read_varint(),
                reader.read_u8(),
                reader.read_varint(),
                reader.read_varint(),
            )
            for _ in range(reader.read_varint())
        ]
        min_ts: Optional[float] = None
        max_ts: Optional[float] = None
        if version >= 2 and reader.read_u8():
            min_ts = reader.read_varint() / _TS_SCALE
            max_ts = reader.read_varint() / _TS_SCALE
        return cls(
            block_id, first_line_id, num_lines, type_mask, bloom, vectors,
            min_ts, max_ts,
        )


class ArchiveIndex:
    """Block-name → :class:`BlockSummary` map with a wire format."""

    def __init__(self) -> None:
        self.blocks: Dict[str, BlockSummary] = {}

    def add(self, name: str, summary: BlockSummary) -> None:
        self.blocks[name] = summary

    def get(self, name: str) -> Optional[BlockSummary]:
        return self.blocks.get(name)

    def discard(self, name: str) -> None:
        self.blocks.pop(name, None)

    def __len__(self) -> int:
        return len(self.blocks)

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def serialize(self, version: int = VERSION) -> bytes:
        writer = BinaryWriter()
        writer.write_varint(len(self.blocks))
        for name in sorted(self.blocks):
            writer.write_str(name)
            self.blocks[name].write(writer, version)
        return MAGIC + bytes([version]) + writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes) -> "ArchiveIndex":
        if data[:4] != MAGIC:
            raise FormatError("not an archive index: bad magic")
        if len(data) < 5 or data[4] not in _KNOWN_VERSIONS:
            raise FormatError("unsupported archive index version")
        version = data[4]
        reader = BinaryReader(data[5:])
        index = cls()
        for _ in range(reader.read_varint()):
            name = reader.read_str()
            index.add(name, BlockSummary.read(reader, version))
        return index

    @classmethod
    def build(cls, store: object, templates: object = None) -> "ArchiveIndex":
        """Rebuild the index from the blocks of *store* (legacy archives).

        Pays one full read per block — exactly what opening a legacy
        archive cost before; every later query then prunes for free.
        *templates* is the resolver for shared-format (flag 0x01) boxes.
        """
        from ..capsule.box import CapsuleBox

        index = cls()
        for name in store.names():  # type: ignore[attr-defined]
            box = CapsuleBox.deserialize(
                store.get(name), templates=templates  # type: ignore[attr-defined]
            )
            index.add(name, BlockSummary.from_box(box))
        return index


def load_index(store: object) -> Optional[ArchiveIndex]:
    """The stored sidecar index of *store*, or None when absent/corrupt."""
    try:
        if not store.aux_exists(INDEX_AUX_NAME):  # type: ignore[attr-defined]
            return None
        data = store.get_aux(INDEX_AUX_NAME)  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return None
    try:
        return ArchiveIndex.deserialize(data)
    except Exception:
        # A corrupt sidecar is never fatal: it is derived data, so the
        # caller simply rebuilds it from the blocks.
        return None


def save_index(store: object, index: ArchiveIndex) -> None:
    store.put_aux(INDEX_AUX_NAME, index.serialize())  # type: ignore[attr-defined]
