"""An S3-like remote archive store: ranged GETs over a simulated network.

Cloud log archives live in object storage, where every request pays a
round trip and may transiently fail.  :class:`RemoteStore` wraps any
:class:`~repro.blockstore.store.ArchiveStore` (an in-memory one by
default) behind a per-request gate that injects configurable latency,
jitter and failures — so the whole lazy-I/O stack (`BlobSource`, box TOC
reads, coalesced capsule prefetch) runs unchanged against "remote"
storage, and the cluster's hedging/retry machinery has something real to
mitigate.

The injected schedule is deterministic per (profile, seed): failures come
from a seeded RNG (or the ``fail_first`` counter for exactly-N
deterministic faults), so tests can script a fault pattern and benchmarks
can replay one.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from ..common.errors import ReproError
from ..obs.metrics import get_registry
from .store import ArchiveStore, MemoryStore

_REMOTE_REQUESTS = get_registry().counter(
    "loggrep_remote_requests_total", "Simulated remote-store requests, by op"
)
_REMOTE_FAILURES = get_registry().counter(
    "loggrep_remote_failures_injected_total",
    "Remote-store requests failed by fault injection",
)
_REMOTE_SLEEP_SECONDS = get_registry().counter(
    "loggrep_remote_sleep_seconds_total",
    "Simulated network latency injected by remote stores",
)


class RemoteStoreError(ReproError):
    """A simulated-remote request failed transiently (retryable)."""


@dataclass
class FaultProfile:
    """Per-request behavior of one simulated remote store.

    * ``latency_s`` — fixed round-trip latency added to every request;
    * ``jitter_s`` — uniform extra latency in ``[0, jitter_s)``;
    * ``failure_rate`` — probability a request raises
      :class:`RemoteStoreError` (after its latency — the bytes were "in
      flight" when the connection died);
    * ``fail_first`` — fail exactly the first N requests, then heal:
      deterministic fault scripting for tests;
    * ``seed`` — RNG seed; same profile + seed → same jitter/failure
      schedule.
    """

    latency_s: float = 0.0
    jitter_s: float = 0.0
    failure_rate: float = 0.0
    fail_first: int = 0
    seed: int = 0


class RemoteStore(ArchiveStore):
    """A fault-injecting ArchiveStore proxy over an inner store.

    Every data-path operation (`get`, `get_range`, `put`, `size`,
    `delete` and the aux-blob ops) is one simulated request; pure-local
    bookkeeping (`names`, `exists`, `total_bytes`) is free, matching how
    an object-store client would cache its listing.
    """

    def __init__(
        self,
        inner: Optional[ArchiveStore] = None,
        profile: Optional[FaultProfile] = None,
    ):  # pylint: disable=super-init-not-called
        self.inner = inner if inner is not None else MemoryStore()
        self.profile = profile or FaultProfile()
        self.root = f"remote({self.inner.root})"
        self._use_mmap = False
        self._rng = random.Random(self.profile.seed)
        self._lock = threading.Lock()
        self.requests = 0
        self.failures_injected = 0

    def set_profile(self, profile: FaultProfile) -> None:
        """Swap the fault profile live (e.g. turn a node into a straggler
        mid-benchmark).  The RNG is reseeded so the schedule stays
        deterministic from the swap onward."""
        with self._lock:
            self.profile = profile
            self._rng = random.Random(profile.seed)

    # ------------------------------------------------------------------
    def _request(self, op: str) -> None:
        """The per-request gate: sleep the simulated round trip, then
        maybe fail.  RNG draws are serialized under the lock so the
        schedule is deterministic regardless of thread interleaving; the
        sleep itself happens outside it (concurrent requests overlap,
        like real sockets)."""
        profile = self.profile
        with self._lock:
            self.requests += 1
            delay = profile.latency_s
            if profile.jitter_s > 0.0:
                delay += self._rng.uniform(0.0, profile.jitter_s)
            if profile.fail_first > 0:
                profile.fail_first -= 1
                fail = True
            else:
                fail = (
                    profile.failure_rate > 0.0
                    and self._rng.random() < profile.failure_rate
                )
        _REMOTE_REQUESTS.inc(op=op)
        if delay > 0.0:
            _REMOTE_SLEEP_SECONDS.inc(delay)
            time.sleep(delay)
        if fail:
            with self._lock:
                self.failures_injected += 1
            _REMOTE_FAILURES.inc()
            raise RemoteStoreError(
                f"injected failure on remote {op} ({self.root})"
            )

    # ------------------------------------------------------------------
    # billable data-path requests
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> None:
        self._request("put")
        self.inner.put(name, data)

    def get(self, name: str) -> bytes:
        self._request("get")
        return self.inner.get(name)

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        self._request("get_range")
        return self.inner.get_range(name, offset, length)

    def size(self, name: str) -> int:
        self._request("size")
        return self.inner.size(name)

    def delete(self, name: str) -> None:
        self._request("delete")
        self.inner.delete(name)

    def put_aux(self, name: str, data: bytes) -> None:
        self._request("put")
        self.inner.put_aux(name, data)

    def get_aux(self, name: str) -> bytes:
        self._request("get")
        return self.inner.get_aux(name)

    def delete_aux(self, name: str) -> None:
        self._request("delete")
        self.inner.delete_aux(name)

    # ------------------------------------------------------------------
    # free local bookkeeping (cached listing)
    # ------------------------------------------------------------------
    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def aux_exists(self, name: str) -> bool:
        return self.inner.aux_exists(name)

    def names(self) -> List[str]:
        return self.inner.names()

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def enable_mmap(self) -> None:  # remote blobs cannot be mapped
        pass

    def disable_mmap(self) -> None:
        pass
