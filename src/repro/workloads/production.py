"""The 21 Alibaba-Cloud-style production log types (Logs A-U).

The real logs are proprietary; each spec here is synthesized to exhibit
the structure the paper describes for its anonymized counterpart and to
make the corresponding Table 1 query meaningful:

* hex ids with shared prefixes, counters and timestamps → *real* vectors
  with strong runtime patterns;
* states, error codes, module names → *nominal* vectors;
* a rare **incident template** per log plants the exact co-occurring
  values Table 1 greps for (debugging queries target one incident, so the
  conditions correlate rather than being independent coin flips), while
  ``Sometimes`` fields sprinkle near-miss values elsewhere as filter noise;
* Log T is the volume outlier (964 GB in the paper) via ``size_factor``;
* Log U's variables are deliberately pattern-poor — the paper's noted
  exception where runtime patterns cannot help.
"""

from __future__ import annotations

from typing import List

from .fields import (
    Choice,
    Compose,
    Counter,
    Enum,
    HexId,
    IPv4,
    Number,
    Path,
    PrefixedId,
    Sometimes,
    TimeHMS,
    Timestamp,
    Word,
)
from .spec import LogSpec, TemplateSpec

#: Weight of the planted incident template relative to ~10 units of
#: background traffic (≈0.5% of lines).
INCIDENT = 0.05


def _level(err_weight: int = 1) -> Enum:
    return Enum(
        ["INFO", "INFO", "WARNING", "ERROR"], [70, 20, 10 - err_weight, err_weight]
    )


def production_specs() -> List[LogSpec]:
    """Build the full Log A..U suite."""
    return [
        _log_a(),
        _log_b(),
        _log_c(),
        _log_d(),
        _log_e(),
        _log_f(),
        _log_g(),
        _log_h(),
        _log_i(),
        _log_j(),
        _log_k(),
        _log_l(),
        _log_m(),
        _log_n(),
        _log_o(),
        _log_p(),
        _log_q(),
        _log_r(),
        _log_s(),
        _log_t(),
        _log_u(),
    ]


# ----------------------------------------------------------------------
def _log_a() -> LogSpec:
    ts = Timestamp(date="2020-06-11")
    state = Enum(
        ["REQ_ST_OPEN", "REQ_ST_ACTIVE", "REQ_ST_CLOSED", "REQ_ST_ABORT"],
        [4, 4, 3, 1],
    )
    return LogSpec(
        name="Log A",
        description="request state machine of a storage frontend",
        templates=[
            TemplateSpec(
                6,
                "{} {} request state:{} code:{} reqId:{}",
                [ts, _level(), state, Number(20000, 20100),
                 Sometimes("5E9D21AD5E473938", HexId(16, shared_prefix_len=4), p=0.002)],
            ),
            TemplateSpec(
                4,
                "{} INFO accept conn from {} reqId:{}",
                [ts, IPv4("11.193", port=True), HexId(16)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR request state:REQ_ST_CLOSED code:20012 reqId:5E9D21AD5E473938",
                [ts],
            ),
        ],
        query="ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D21AD5E473938",
    )


def _log_b() -> LogSpec:
    ts = Timestamp(date="2020-04-27")
    return LogSpec(
        name="Log B",
        description="multi-tenant ingestion service audit log",
        templates=[
            TemplateSpec(
                7,
                "{} {} Project:{} RequestId:{} latency:{}us",
                [ts, _level(2), Sometimes("2963", Number(1000, 5000), p=0.01),
                 HexId(15, shared_prefix_len=3), Number(40, 90000)],
            ),
            TemplateSpec(
                3,
                "{} INFO Project:{} quota check pass shard:{}",
                [ts, Number(1000, 5000), Number(0, 128)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR Project:2963 RequestId:5EA6F82FDF142E2 latency:{}us",
                [ts, Number(400000, 900000)],
            ),
        ],
        query="ERROR and Project:2963 and RequestId:5EA6F82FDF142E2",
    )


def _log_c() -> LogSpec:
    ts = Timestamp(date="2021-02-02")
    return LogSpec(
        name="Log C",
        description="control-plane scheduler log, queried by level only",
        templates=[
            TemplateSpec(
                8,
                "{} {} schedule job {} on worker-{} queue={} bin={}",
                [ts, _level(), PrefixedId("job_", 8), Number(0, 400), Word(),
                 Path(root="/apsara/bin", stems=("sched", "meta"), ext="", ids=30)],
            ),
            TemplateSpec(
                2,
                "{} {} rebalance group {} moved={}",
                [ts, _level(), HexId(8), Number(0, 64)],
            ),
        ],
        query="ERROR",
    )


def _log_d() -> LogSpec:
    ts = Timestamp(date="2020-11-19")
    logstore = Enum(["res_p", "res_q", "acc_log", "ops_log"], [2, 3, 3, 2])
    return LogSpec(
        name="Log D",
        description="per-logstore traffic meter",
        templates=[
            TemplateSpec(
                9,
                "{} INFO project_id:{} logstore:{} inflow:{} outflow:{}",
                [ts, Sometimes("30935", Number(10000, 60000), p=0.01), logstore,
                 Number(0, 900), Number(0, 900)],
            ),
            TemplateSpec(
                1,
                "{} WARNING project_id:{} logstore:{} throttled",
                [ts, Number(10000, 60000), logstore],
            ),
            TemplateSpec(
                INCIDENT,
                "{} INFO project_id:30935 logstore:res_p inflow:5 outflow:{}",
                [ts, Number(0, 900)],
            ),
        ],
        query="project_id:30935 and logstore:res_p and inflow:5",
    )


def _log_e() -> LogSpec:
    ts = Timestamp(date="2021-05-30")
    logstore = Compose(Choice(["dash", "user", "flow", "stat"]), "_ay87a")
    return LogSpec(
        name="Log E",
        description="sharded store heartbeat (wildcarded logstore in query)",
        templates=[
            TemplateSpec(
                9,
                "{} INFO project:{} logstore:{} shard:{} wcount:{} rcount:{}",
                [ts, Number(100, 400), logstore, Number(0, 128), Number(0, 40),
                 Number(0, 40)],
            ),
            TemplateSpec(
                1,
                "{} INFO project:{} shard:{} split begin",
                [ts, Number(100, 400), Number(0, 128)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} INFO project:161 logstore:{} shard:99 wcount:10 rcount:{}",
                [ts, logstore, Number(0, 40)],
            ),
        ],
        query="project:161 and logstore:????_ay87a and shard:99 and wcount:10",
    )


def _log_f() -> LogSpec:
    ts = Timestamp(date="2020-08-14")
    user = Enum(["-2", "100234", "100891", "204417", "330019"], [4, 2, 2, 1, 1])
    return LogSpec(
        name="Log F",
        description="API gateway log; query excludes the anonymous user",
        templates=[
            TemplateSpec(
                8,
                "{} {} UserId:{} api:{} status:{}",
                [ts, _level(2), user,
                 Choice(["/v1/put", "/v1/get", "/v1/list", "/v1/del"]),
                 Enum(["200", "200", "200", "403", "500"], [70, 10, 10, 5, 5])],
            ),
            TemplateSpec(
                0.4,
                "{} ERROR UserId:{} quota exceeded limit:{}",
                [ts, user, Number(100, 10000)],
            ),
        ],
        query="ERROR not UserId:-2",
    )


def _log_g() -> LogSpec:
    ts = Timestamp(date="2020-09-01")
    return LogSpec(
        name="Log G",
        description="chunk server I/O trace (subnet-patterned sources)",
        templates=[
            TemplateSpec(
                6,
                "{} INFO Operation:{} SATADiskId:{} From:tcp://{} TraceId:{}",
                [ts, Enum(["ReadChunk", "WriteChunk", "SealChunk"], [5, 4, 1]),
                 Number(0, 24), IPv4("10.143", port=True),
                 HexId(32, shared_prefix_len=0)],
            ),
            TemplateSpec(
                3,
                "{} INFO Operation:GC chunk {} freed:{}KB",
                [ts, PrefixedId("chunk_", 12), Number(4, 4096)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} INFO Operation:ReadChunk SATADiskId:7 From:tcp://{} "
                "TraceId:3615b60b169820bf160d4acd7b8b8732",
                [ts, IPv4("10.143", port=True)],
            ),
        ],
        query=(
            "Operation:ReadChunk and SATADiskId:7 and From:tcp://10.1??.* "
            "and TraceId:3615b60b169820bf160d4acd7b8b8732"
        ),
    )


def _log_h() -> LogSpec:
    ts = Timestamp(date="2021-01-12")
    return LogSpec(
        name="Log H",
        description="replication pipeline log",
        templates=[
            TemplateSpec(
                7,
                "{} {} replicate {} of {} to {} bytes:{}",
                [ts, _level(), PrefixedId("seg_", 9),
                 Path(root="/mnt/disk1/pangu", stems=("normal", "rs", "ec"), ids=50),
                 IPv4("11.8"), Number(1024, 67108864)],
            ),
            TemplateSpec(
                3,
                "{} {} pipeline {} stage:{} lag:{}ms",
                [ts, _level(), HexId(8), Enum(["recv", "fsync", "ack"]),
                 Number(0, 500)],
            ),
        ],
        query="ERROR",
    )


def _log_i() -> LogSpec:
    # Starts at 06:59:30 so the stream crosses into hour 07 (the query's
    # time window) early even for small generated sizes.
    ts = Timestamp(date="2019-11-06", start_seconds=6 * 3600 + 3570, step_ms=90)
    return LogSpec(
        name="Log I",
        description="warning-heavy maintenance log; time-window query",
        templates=[
            TemplateSpec(
                8,
                "{} {} compact tablet {} files:{}",
                [ts, Enum(["INFO", "WARNING"], [19, 1]), PrefixedId("tab_", 7),
                 Number(2, 40)],
            ),
            TemplateSpec(
                0.6,
                "{} WARNING slow scan tablet {} took {}ms",
                [ts, PrefixedId("tab_", 7), Number(800, 20000)],
            ),
        ],
        query="WARNING and 2019-11-06 07",
    )


def _log_j() -> LogSpec:
    ts = Timestamp(date="2020-12-03")
    return LogSpec(
        name="Log J",
        description="Pangu-style RPC trace summaries",
        templates=[
            TemplateSpec(
                6,
                "{} INFO TraceType:{} SectionType:{} CountOk:{} CountFail:{}",
                [ts, Enum(["PanguTraceSummary", "PanguTraceDetail"], [7, 3]),
                 Enum(["RPC_SealAndNew", "RPC_Append", "RPC_Open"], [2, 6, 2]),
                 Number(1, 4000),
                 Enum(["0", "0", "0", "1", "2", "7"], [60, 20, 10, 5, 3, 2])],
            ),
            TemplateSpec(
                4,
                "{} INFO TraceType:PanguTraceSpan span:{} parent:{} cost:{}us",
                [ts, HexId(12), HexId(12), Number(10, 90000)],
            ),
        ],
        query="TraceType:PanguTraceSummary and SectionType:RPC_SealAndNew not CountFail:0",
    )


def _log_k() -> LogSpec:
    ts = Timestamp(
        fmt="{date}T{hh:02d}:{mm:02d}:{ss:02d}",
        date="2019-11-04",
        start_seconds=2 * 3600 + 20 * 60,
        step_ms=60,
    )
    return LogSpec(
        name="Log K",
        description="HTTP access log for a results bucket",
        templates=[
            TemplateSpec(
                9,
                "{} {} {} /results/{} {} {}ms",
                [ts, IPv4("42.120"),
                 Enum(["GET", "PUT", "DELETE", "HEAD"], [70, 20, 5, 5]),
                 Number(0, 40), Enum(["200", "204", "404", "500"], [80, 10, 8, 2]),
                 Number(1, 900)],
            ),
            TemplateSpec(
                INCIDENT * 2,
                "2019-11-04T02:26:{} {} DELETE /results/0 204 {}ms",
                [Number(0, 60, "02d"), IPv4("42.120"), Number(1, 900)],
            ),
        ],
        query="DELETE and /results/0 and 2019-11-04T02:26",
    )


def _log_l() -> LogSpec:
    ts = Timestamp(date="2021-03-17")
    return LogSpec(
        name="Log L",
        description="packet processor with multi-token 'Packet id' query",
        templates=[
            TemplateSpec(
                7,
                "{} {} Errorcode:{} Packet id:{} size:{}",
                [ts, Enum(["INFO", "WARNING"], [6, 4]),
                 Enum(["0", "0", "0", "104", "110"], [70, 15, 5, 6, 4]),
                 Counter(172000000, 7, 5), Number(64, 9000)],
            ),
            TemplateSpec(
                3,
                "{} INFO ring buffer usage {}%",
                [ts, Number(0, 100)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} WARNING Errorcode:0 Packet id:172397858 size:{}",
                [ts, Number(64, 9000)],
            ),
        ],
        query="WARNING and Errorcode:0 and Packet id:172397858",
    )


def _log_m() -> LogSpec:
    ts = Timestamp(date="2020-10-22")
    client = Compose("exchange-client-", Number(0, 32))
    return LogSpec(
        name="Log M",
        description="exchange worker log; query hits a thread name",
        templates=[
            TemplateSpec(
                7,
                "{} {} [{}] fetch /results/{} rows:{}",
                [ts, _level(2), client, Number(0, 40), Number(0, 100000)],
            ),
            TemplateSpec(
                3,
                "{} INFO [{}] idle {}s",
                [ts, client, Number(1, 600)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR [exchange-client-24] fetch /results/10 rows:{}",
                [ts, Number(0, 100000)],
            ),
        ],
        query="ERROR and exchange-client-24 and /results/10",
    )


def _log_n() -> LogSpec:
    ts = Timestamp(date="2021-04-01")
    amount = Enum(["1", "42", "1337", "274899", "18446744073709551615"])
    return LogSpec(
        name="Log N",
        description="billing aggregator (values of very uneven length)",
        templates=[
            TemplateSpec(
                8,
                "{} {} project_id:{} bill item {} amount:{}",
                [ts, _level(2), Number(10000, 99999), Word(), amount],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR project_id:51274 bill item {} amount:{}",
                [ts, Word(), amount],
            ),
        ],
        query="ERROR and project_id:51274",
    )


def _log_o() -> LogSpec:
    ts = Timestamp(date="2020-04-14", start_seconds=3 * 3600 + 3480, step_ms=70)
    return LogSpec(
        name="Log O",
        description="lowercase-level tenant log with a time window",
        templates=[
            TemplateSpec(
                8,
                "{} {} ProjectId:{} op:{} took {}us",
                [ts, Enum(["info", "warn", "error"], [8, 1, 1]),
                 Number(1000, 9999), Word(), Number(10, 500000)],
            ),
            TemplateSpec(
                INCIDENT * 2,
                "2020-04-14 04:{}:{}.{} error ProjectId:2396 op:{} took {}us",
                [Number(0, 60, "02d"), Number(0, 60, "02d"), Number(0, 1000, "03d"),
                 Word(), Number(10, 500000)],
            ),
        ],
        query="error and ProjectId:2396 and 2020-04-14 04",
    )


def _log_p() -> LogSpec:
    ts = Timestamp(date="2021-06-09")
    return LogSpec(
        name="Log P",
        description="frontend UI event log with symbolic error names",
        templates=[
            TemplateSpec(
                8,
                "{} {} event:{} user:{} page:{}",
                [ts, _level(2),
                 Enum(["CLICK_SAVE", "CLICK_SAVE_ERROR", "CLICK_OPEN", "DRAG_DROP"],
                      [55, 5, 30, 10]),
                 Number(100000, 999999),
                 Path(root="/console/app", stems=("editor", "billing", "monitor", "alerts"), ext="", ids=25)],
            ),
        ],
        query="ERROR and CLICK_SAVE_ERROR",
    )


def _log_q() -> LogSpec:
    ts = Timestamp(date="2021-05-26")
    return LogSpec(
        name="Log Q",
        description="C++ service log with source file + unix Time: query",
        templates=[
            TemplateSpec(
                6,
                "{} {} {}:{} Time:{} PostLogStoreLogs done",
                [ts, _level(2),
                 Enum(["PostLogStoreLogsHandler.cpp", "GetCursorHandler.cpp",
                       "PutShardHandler.cpp"], [5, 3, 2]),
                 Number(40, 900), Counter(1622009000, 1, 2)],
            ),
            TemplateSpec(
                4,
                "{} INFO heartbeat epoch:{}",
                [ts, Counter(88000, 1, 0)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR PostLogStoreLogsHandler.cpp:{} Time:1622009998 PostLogStoreLogs done",
                [ts, Number(40, 900)],
            ),
        ],
        query="ERROR and PostLogStoreLogsHandler.cpp and Time:1622009998",
    )


def _log_r() -> LogSpec:
    ts = Timestamp(date="2020-07-07")
    return LogSpec(
        name="Log R",
        description="partition server; query has a wildcarded request ip",
        templates=[
            TemplateSpec(
                7,
                "{} {} part_id:{} request id REQ_{} state:{}",
                [ts, _level(2), Number(0, 1024), IPv4("11.203"),
                 Enum(["ok", "slow", "fail"], [8, 1, 1])],
            ),
            TemplateSpec(
                3,
                "{} INFO part_id:{} checkpoint at {}",
                [ts, Number(0, 1024), Counter(7_000_000, 13, 7)],
            ),
            TemplateSpec(
                INCIDENT,
                "{} ERROR part_id:510 request id REQ_{} state:fail",
                [ts, IPv4("11.203")],
            ),
        ],
        query="ERROR and part_id:510 and request id REQ_11.2??.*",
    )


def _log_s() -> LogSpec:
    clock = TimeHMS(9, 12)
    return LogSpec(
        name="Log S",
        description="sudo/syslog-style host log (query hits the template)",
        templates=[
            TemplateSpec(
                5,
                "Aug 30 {} host{} sudo: admin : TTY=unknown ; PWD=/ ; COMMAND={}",
                [clock, Number(1, 40),
                 Choice(["/etc/init.d/ilogtaild", "/usr/bin/systemctl",
                         "/bin/journalctl"])],
            ),
            TemplateSpec(
                5,
                "Aug 30 {} host{} crond[{}]: session opened for user root",
                [clock, Number(1, 40), Number(100, 32000)],
            ),
        ],
        query="TTY=unknown and /etc/init.d/ilogtaild and Aug 30 10",
    )


def _log_t() -> LogSpec:
    ts = Timestamp(date="2020-04-08", start_seconds=5 * 3600 + 45 * 60, step_ms=25)
    return LogSpec(
        name="Log T",
        description="the 964GB volume outlier; dense trace stream",
        size_factor=6.0,
        templates=[
            TemplateSpec(
                8,
                "{} {} io trace vol:{} op:{} lat:{}us",
                [ts, _level(1), Number(10000, 99999), Enum(["R", "W", "F"], [6, 3, 1]),
                 Number(20, 30000)],
            ),
            TemplateSpec(
                2,
                "{} INFO flush epoch {} dirty:{}MB",
                [ts, Counter(400, 1, 0), Number(1, 2048)],
            ),
            TemplateSpec(
                INCIDENT,
                "2020-04-08 05:5{}:{}.{} ERROR io trace vol:39244 op:{} lat:{}us",
                [Number(0, 10), Number(0, 60, "02d"), Number(0, 1000, "03d"),
                 Enum(["R", "W"]), Number(20, 30000)],
            ),
        ],
        query="ERROR and 39244 and 2020-04-08 05:5",
    )


def _log_u() -> LogSpec:
    ts = Timestamp(date="2021-04-13")
    # Deliberately pattern-poor variables: random-shape tokens defeat both
    # delimiter and LCS probing, so runtime patterns cannot help (the
    # paper's one log where LogGrep-SP ties full LogGrep).
    blob = Choice(
        [
            "1618152650857662364_3_149245463_199235229",
            "qz8814xkw02",
            "m-31-aa-09-kd",
            "77810249",
            "trie0x88ffea",
            "snapshot99213b",
            "xx9912",
            "k2k2k2k2",
        ]
    )
    return LogSpec(
        name="Log U",
        description="index loader with irregular, pattern-poor tokens",
        templates=[
            TemplateSpec(
                6,
                "{} {} load segment {} offset {}",
                [ts, _level(2), blob, Number(0, 1 << 30)],
            ),
            TemplateSpec(
                4,
                "{} ERROR failed to read trie data {} retrying",
                [ts, blob],
            ),
        ],
        query="failed to read trie data and 1618152650857662364_3_149245463_199235229",
    )
