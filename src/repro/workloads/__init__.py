"""Synthetic workloads standing in for the paper's 21 production and 16
public log datasets, plus the Table 1 query per dataset."""

from .fields import (
    Choice,
    Compose,
    Counter,
    Enum,
    EnumCode,
    Field,
    HexId,
    IPv4,
    Literal,
    Number,
    Path,
    PrefixedId,
    Sometimes,
    Timestamp,
    Word,
)
from .loader import FileLogSpec
from .production import production_specs
from .public import public_specs
from .queries import DerivedQuery, derived_queries
from .spec import LogSpec, TemplateSpec, total_lines


def all_specs():
    """Every dataset of the evaluation (21 production + 16 public)."""
    return production_specs() + public_specs()


def spec_by_name(name: str) -> LogSpec:
    for spec in all_specs():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown dataset {name!r}")


__all__ = [
    "LogSpec",
    "FileLogSpec",
    "DerivedQuery",
    "derived_queries",
    "TemplateSpec",
    "total_lines",
    "production_specs",
    "public_specs",
    "all_specs",
    "spec_by_name",
    "Field",
    "Timestamp",
    "HexId",
    "Counter",
    "IPv4",
    "Path",
    "Enum",
    "EnumCode",
    "Number",
    "PrefixedId",
    "Literal",
    "Choice",
    "Sometimes",
    "Compose",
    "Word",
]
