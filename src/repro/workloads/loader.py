"""Loading real log files as workloads.

The synthetic specs stand in for the paper's datasets, but the library is
meant for *your* logs: this module wraps plain text files in the same
:class:`~repro.workloads.spec.LogSpec`-like interface the bench harness
uses, so a downstream user can run the full evaluation (latency, ratio,
cost, ablations) on their own data with one call::

    spec = FileLogSpec.from_path("/var/log/app.log", query="ERROR")
    measurements = run_suite([spec])
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class FileLogSpec:
    """A dataset backed by a log file on disk.

    Duck-types the parts of :class:`~repro.workloads.spec.LogSpec` the
    bench harness touches: ``name``, ``query``, ``size_factor``,
    ``description`` and ``generate``.
    """

    name: str
    path: str
    query: str
    description: str = ""
    size_factor: float = 1.0
    encoding: str = "utf-8"
    _cache: Optional[List[str]] = field(default=None, repr=False)

    @classmethod
    def from_path(
        cls, path: str, query: str, name: Optional[str] = None
    ) -> "FileLogSpec":
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        return cls(
            name=name or os.path.basename(path),
            path=path,
            query=query,
            description=f"log file {path}",
        )

    def _lines(self) -> List[str]:
        if self._cache is None:
            with open(self.path, "r", encoding=self.encoding, errors="replace") as fh:
                text = fh.read()
            lines = text.split("\n")
            if lines and lines[-1] == "":
                lines.pop()
            # NUL bytes cannot be stored in Capsules; strip defensively.
            self._cache = [line.replace("\x00", "") for line in lines]
        return self._cache

    def generate(self, num_lines: int) -> List[str]:
        """The first ``num_lines * size_factor`` lines of the file.

        Mirrors the synthetic specs' contract; pass a large number (or
        ``len(spec)``) to use the whole file.
        """
        want = max(1, int(num_lines * self.size_factor))
        return self._lines()[:want]

    def __len__(self) -> int:
        return len(self._lines())
