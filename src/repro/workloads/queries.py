"""Derived query workloads.

Table 1 gives one query per dataset.  To measure latency *distributions*
(and how filtering behaves across query classes) we derive a family of
commands from a dataset's own content:

=============  ======================================================
class          what it exercises
=============  ======================================================
template-hit   keyword inside a static pattern → whole groups match
               without touching any Capsule
nominal        a mid-frequency token → dictionary + index path
rare-id        a token occurring exactly once → stamps + patterns
               must prune almost everything
numeric        a digits-only token → the class CLP cannot filter
wildcard       the rare id with its middle wildcarded
negation       template-hit AND NOT nominal
miss           a keyword absent from the dataset → pure filtering
=============  ======================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.tokenizer import tokenize

#: A keyword that no generator ever emits.
MISS_KEYWORD = "zqx_absent_keyword_xqz"


@dataclass(frozen=True)
class DerivedQuery:
    """One derived command with its class label."""

    label: str
    command: str


def _token_counts(lines: Sequence[str]) -> Counter:
    counts: Counter = Counter()
    for line in lines:
        for token in tokenize(line):
            if token:
                counts[token] += 1
    return counts


def _pick(
    counts: Counter,
    total_lines: int,
    lo: float,
    hi: float,
    predicate=None,
) -> Optional[str]:
    """A token whose frequency lies in [lo, hi) of lines, longest first."""
    candidates = [
        token
        for token, count in counts.items()
        if lo * total_lines <= count < hi * total_lines
        and (predicate is None or predicate(token))
    ]
    if not candidates:
        return None
    # Longest token of the band: most selective-looking, deterministic.
    return max(candidates, key=lambda t: (len(t), t))


def derived_queries(lines: Sequence[str]) -> List[DerivedQuery]:
    """Build the query family for one dataset's generated lines."""
    counts = _token_counts(lines)
    n = len(lines)
    queries: List[DerivedQuery] = []

    is_alpha = lambda t: t.isalpha()  # noqa: E731
    has_alnum_mix = lambda t: any(c.isdigit() for c in t) and any(  # noqa: E731
        c.isalpha() for c in t
    )

    template_hit = _pick(counts, n, 0.3, 1.1, is_alpha)
    if template_hit:
        queries.append(DerivedQuery("template-hit", template_hit))

    nominal = _pick(counts, n, 0.01, 0.2, is_alpha)
    if nominal:
        queries.append(DerivedQuery("nominal", nominal))

    rare = _pick(counts, n, 0, 2 / max(n, 1), has_alnum_mix)
    if rare:
        queries.append(DerivedQuery("rare-id", rare))
        if len(rare) >= 6:
            wildcarded = rare[:2] + "*" + rare[-2:]
            queries.append(DerivedQuery("wildcard", wildcarded))

    numeric = _pick(counts, n, 0, 0.01, str.isdigit)
    if numeric:
        queries.append(DerivedQuery("numeric", numeric))

    if template_hit and nominal:
        queries.append(
            DerivedQuery("negation", f"{template_hit} not {nominal}")
        )

    queries.append(DerivedQuery("miss", MISS_KEYWORD))
    return queries
