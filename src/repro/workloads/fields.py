"""Deterministic field generators for synthetic log workloads.

The paper's evaluation data is proprietary; these generators synthesize
variables with exactly the characteristics §2.3 observes in production:

* ids with fixed prefixes (``blk_<*>``, ``T<*>``);
* numeric values confined to a per-block range (timestamps, counters);
* paths under a common root and IPs within a common subnet;
* low-duplication "real" variables and high-duplication "nominal"
  variables (states, error codes, user names).

Every field is a callable ``field(rng, i) -> str`` where *rng* is the
spec's seeded RNG and *i* the line index, so a (spec, seed, size) triple
always generates byte-identical logs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Field:
    """Base class: one variable position of a template."""

    def __call__(self, rng: random.Random, i: int) -> str:  # pragma: no cover
        raise NotImplementedError


class Timestamp(Field):
    """Monotonically increasing wall-clock strings.

    Values share the date prefix within a run — the runtime-pattern
    opportunity the paper calls out for January-2021 timestamps.
    """

    def __init__(
        self,
        fmt: str = "{date} {hh:02d}:{mm:02d}:{ss:02d}.{ms:03d}",
        date: str = "2020-04-08",
        start_seconds: int = 5 * 3600,
        step_ms: int = 40,
    ):
        self.fmt = fmt
        self.date = date
        self.start_seconds = start_seconds
        self.step_ms = step_ms

    def __call__(self, rng: random.Random, i: int) -> str:
        total_ms = self.start_seconds * 1000 + i * self.step_ms + rng.randrange(
            self.step_ms
        )
        seconds, ms = divmod(total_ms, 1000)
        hh, rem = divmod(seconds, 3600)
        mm, ss = divmod(rem, 60)
        return self.fmt.format(date=self.date, hh=hh % 24, mm=mm, ss=ss, ms=ms)


class HexId(Field):
    """Fixed-width uppercase hex identifiers, optionally prefixed.

    ``shared_prefix_len`` hex digits are frozen per instance so the values
    exhibit the common-literal-infix structure the LCS probe discovers.
    """

    def __init__(self, width: int = 16, prefix: str = "", shared_prefix_len: int = 4):
        self.width = width
        self.prefix = prefix
        self.shared_prefix_len = min(shared_prefix_len, width)
        self._shared: Optional[str] = None

    def __call__(self, rng: random.Random, i: int) -> str:
        if self._shared is None:
            self._shared = "".join(
                rng.choice("0123456789ABCDEF") for _ in range(self.shared_prefix_len)
            )
        tail_len = self.width - self.shared_prefix_len
        tail = "".join(rng.choice("0123456789ABCDEF") for _ in range(tail_len))
        return f"{self.prefix}{self._shared}{tail}"


class Counter(Field):
    """Increasing decimal counters (request ids, packet ids)."""

    def __init__(self, start: int = 100000, step: int = 1, jitter: int = 3):
        self.start = start
        self.step = step
        self.jitter = jitter

    def __call__(self, rng: random.Random, i: int) -> str:
        return str(self.start + i * self.step + rng.randrange(self.jitter + 1))


class IPv4(Field):
    """Addresses within a common subnet (Log G's ``11.187.<*>.<*>``)."""

    def __init__(self, subnet: str = "11.187", port: bool = False):
        self.subnet = subnet
        self.port = port

    def __call__(self, rng: random.Random, i: int) -> str:
        addr = f"{self.subnet}.{rng.randrange(256)}.{rng.randrange(256)}"
        if self.port:
            return f"{addr}:{rng.randrange(1024, 65536)}"
        return addr


class Path(Field):
    """File paths under a common root (Log A's ``/root/usr/admin/<*>``).

    ``ids`` controls the unique-value count: small values make the field a
    high-duplication *nominal* vector (the paper's file-path example),
    large values make it *real*.
    """

    def __init__(
        self,
        root: str = "/root/usr/admin",
        stems: Sequence[str] = ("data", "meta", "journal", "chunk"),
        ext: str = ".log",
        ids: int = 10000,
    ):
        self.root = root
        self.stems = list(stems)
        self.ext = ext
        self.ids = ids

    def __call__(self, rng: random.Random, i: int) -> str:
        stem = rng.choice(self.stems)
        return f"{self.root}/{stem}_{rng.randrange(self.ids)}{self.ext}"


class Enum(Field):
    """A small closed vocabulary — the canonical *nominal* variable."""

    def __init__(self, choices: Sequence[str], weights: Optional[Sequence[int]] = None):
        self.choices = list(choices)
        self.weights = list(weights) if weights else None

    def __call__(self, rng: random.Random, i: int) -> str:
        if self.weights:
            return rng.choices(self.choices, weights=self.weights, k=1)[0]
        return rng.choice(self.choices)


class EnumCode(Field):
    """Enum + numeric code joined by a separator (``ERR#1623``-style)."""

    def __init__(
        self,
        choices: Sequence[str] = ("SUC", "ERR"),
        weights: Sequence[int] = (9, 1),
        sep: str = "#",
        lo: int = 1600,
        hi: int = 1700,
    ):
        self.choices = list(choices)
        self.weights = list(weights)
        self.sep = sep
        self.lo = lo
        self.hi = hi

    def __call__(self, rng: random.Random, i: int) -> str:
        word = rng.choices(self.choices, weights=self.weights, k=1)[0]
        return f"{word}{self.sep}{rng.randrange(self.lo, self.hi)}"


class Number(Field):
    """Uniform number in a closed per-block range.

    ``fmt`` is a :func:`format` spec applied to the integer (``"02d"``,
    ``"06d"``, ``"08x"``, ...), so templates keep plain ``{}`` slots.
    """

    def __init__(self, lo: int = 0, hi: int = 100, fmt: str = "d"):
        self.lo = lo
        self.hi = hi
        self.fmt = fmt

    def __call__(self, rng: random.Random, i: int) -> str:
        return format(rng.randrange(self.lo, self.hi), self.fmt)


class TimeHMS(Field):
    """A random ``HH:MM:SS`` clock reading (syslog-style logs)."""

    def __init__(self, h_lo: int = 0, h_hi: int = 24, sep: str = ":"):
        self.h_lo = h_lo
        self.h_hi = h_hi
        self.sep = sep

    def __call__(self, rng: random.Random, i: int) -> str:
        hh = rng.randrange(self.h_lo, self.h_hi)
        return (
            f"{hh:02d}{self.sep}{rng.randrange(60):02d}{self.sep}{rng.randrange(60):02d}"
        )


class PrefixedId(Field):
    """``blk_<digits>``-style ids: fixed prefix + decimal body."""

    def __init__(self, prefix: str = "blk_", digits: int = 10):
        self.prefix = prefix
        self.digits = digits

    def __call__(self, rng: random.Random, i: int) -> str:
        body = rng.randrange(10 ** (self.digits - 1), 10**self.digits)
        return f"{self.prefix}{body}"


class Literal(Field):
    """A constant value — used to plant query targets in rare templates."""

    def __init__(self, value: str):
        self.value = value

    def __call__(self, rng: random.Random, i: int) -> str:
        return self.value


class Choice(Field):
    """Pick a whole pre-built string (hostnames, thread names, users)."""

    def __init__(self, values: Sequence[str]):
        self.values = list(values)

    def __call__(self, rng: random.Random, i: int) -> str:
        return rng.choice(self.values)


class Sometimes(Field):
    """Emit ``special`` with probability *p*, else delegate to ``base``.

    This is how each workload guarantees its Table 1 query has hits: the
    queried id appears at a controlled, low frequency.
    """

    def __init__(self, special: str, base: Field, p: float = 0.002):
        self.special = special
        self.base = base
        self.p = p

    def __call__(self, rng: random.Random, i: int) -> str:
        if rng.random() < self.p:
            return self.special
        return self.base(rng, i)


class Compose(Field):
    """Concatenate several fields/literals into one token."""

    def __init__(self, *parts):
        self.parts = [Literal(p) if isinstance(p, str) else p for p in parts]

    def __call__(self, rng: random.Random, i: int) -> str:
        return "".join(part(rng, i) for part in self.parts)


#: Vocabulary used by free-text-ish nominal fields.  Deliberately mixes
#: character classes (case, digits, punctuation) the way real log
#: vocabularies do — §2.2's point is precisely that whole-vector summaries
#: over such mixtures are too general to filter well.
WORDS: List[str] = (
    "connect disconnect open close flush seal append commit rollback elect "
    "replicate migrate balance throttle evict prefetch schedule retry abort "
    "submit finish launch restart register deregister heartbeat snapshot "
    "Rebalance FastPath SlowPath V2-migrate gc-phase1 gc-phase2 IoDrain "
    "WriteBack ReadAhead L0-compact L1-compact checkpoint-7 Recover2PC"
).split()


class Word(Field):
    """A nominal word drawn from a fixed vocabulary."""

    def __init__(self, vocab: Optional[Sequence[str]] = None):
        self.vocab = list(vocab) if vocab else WORDS

    def __call__(self, rng: random.Random, i: int) -> str:
        return rng.choice(self.vocab)
