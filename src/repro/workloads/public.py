"""The 16 public-benchmark log types (Loghub-style, §6.2).

Each spec mirrors the line format of its Loghub namesake closely enough to
exercise the same parsing/extraction behaviour, and carries the Table 1
query for that log (characters the paper masked with ``?`` are filled with
concrete values here).
"""

from __future__ import annotations

from typing import List

from .fields import (
    Choice,
    Compose,
    Counter,
    Enum,
    HexId,
    IPv4,
    Number,
    PrefixedId,
    Sometimes,
    TimeHMS,
    Timestamp,
    Word,
)
from .spec import LogSpec, TemplateSpec


def public_specs() -> List[LogSpec]:
    return [
        _android(),
        _apache(),
        _bgl(),
        _hadoop(),
        _hdfs(),
        _healthapp(),
        _hpc(),
        _linux(),
        _mac(),
        _openstack(),
        _proxifier(),
        _spark(),
        _ssh(),
        _thunderbird(),
        _windows(),
        _zookeeper(),
    ]


def _android() -> LogSpec:
    clock = TimeHMS(10, 20)
    pid = Number(300, 12000)
    return LogSpec(
        name="Android",
        description="logcat stream",
        templates=[
            TemplateSpec(
                6,
                "03-17 {}.{} {} {} I ActivityManager: START u0 cmp=com.app{}/.Main",
                [clock, Number(0, 1000, "03d"), pid, pid, Number(1, 40)],
            ),
            TemplateSpec(
                3,
                "03-17 {}.{} {} {} W libprocessgroup: kill process group {}",
                [clock, Number(0, 1000, "03d"), pid, pid, Number(1000, 30000)],
            ),
            TemplateSpec(
                1,
                "03-17 {}.{} {} {} E SensorService: ERROR socket read length failure {}",
                [clock, Number(0, 1000, "03d"), pid, pid,
                 Enum(["-104", "-11", "-32"], [5, 3, 2])],
            ),
        ],
        query="ERROR and socket read length failure -104",
    )


def _apache() -> LogSpec:
    clock = TimeHMS()
    return LogSpec(
        name="Apache",
        description="httpd error log",
        templates=[
            TemplateSpec(
                6,
                "[Sun Dec 04 {} 2005] [notice] workerEnv.init() ok /etc/httpd/conf/workers{}.properties",
                [clock, Number(1, 9)],
            ),
            TemplateSpec(
                3,
                "[Sun Dec 04 {} 2005] [error] mod_jk child workerEnv in error state {}",
                [clock, Number(1, 12)],
            ),
            TemplateSpec(
                0.4,
                "[Sun Dec 04 {} 2005] [error] [client {}] Invalid URI in request {}",
                [clock, IPv4("61.138"), Choice(["GET", "get", "quit", "HELP"])],
            ),
        ],
        query="error and Invalid URI in request",
    )


def _bgl() -> LogSpec:
    node = Compose(
        "R", Enum(["00", "01", "02", "17"]), "-M", Enum(["0", "1"]), "-N",
        Enum(["0", "1", "2", "4", "8", "D"]),
    )
    epoch = Counter(1117838570, 3, 2)
    return LogSpec(
        name="Bgl",
        description="Blue Gene/L RAS log",
        templates=[
            TemplateSpec(
                6,
                "- {} 2005.06.03 {}-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected",
                [epoch, node],
            ),
            TemplateSpec(
                3,
                "- {} 2005.06.03 {}-C:J12-U11 RAS KERNEL FATAL data TLB error interrupt",
                [epoch, node],
            ),
            TemplateSpec(
                0.4,
                "- {} 2005.06.03 R00-M1-ND RAS KERNEL ERROR {} double-hummer alignment exceptions",
                [epoch, Number(1, 99)],
            ),
        ],
        query="ERROR and R00-M1-ND",
    )


def _hadoop() -> LogSpec:
    ts = Timestamp(
        fmt="{date} {hh:02d}:{mm:02d}:{ss:02d},{ms:03d}",
        date="2015-09-23",
        start_seconds=14 * 3600,
        step_ms=120,
    )
    return LogSpec(
        name="Hadoop",
        description="YARN resource manager log",
        templates=[
            TemplateSpec(
                6,
                "{} INFO [main] org.apache.hadoop.mapreduce.v2.app.MRAppMaster: Executing with tokens: {}",
                [ts, PrefixedId("appattempt_", 10)],
            ),
            TemplateSpec(
                3,
                "{} WARN [ContainerLauncher #{}] org.apache.hadoop.yarn.util.ProcfsBasedProcessTree: "
                "Unexpected: procfs stat file is not in the expected format for process with pid {}",
                [ts, Number(0, 16), Number(1000, 60000)],
            ),
            TemplateSpec(
                0.4,
                "{} ERROR [SIGTERM handler] org.apache.hadoop.mapred.TaskTracker: "
                "RECEIVED SIGNAL 15: SIGTERM task {}",
                [ts, PrefixedId("task_", 8)],
            ),
        ],
        query="ERROR and RECEIVED SIGNAL 15: SIGTERM and 2015-09-23",
    )


def _hdfs() -> LogSpec:
    blk = Compose("blk_", Number(8840000000, 8849999999))
    clock = Number(203500, 223000, "06d")
    return LogSpec(
        name="Hdfs",
        description="HDFS datanode block log (the paper's blk_<*> example)",
        templates=[
            TemplateSpec(
                6,
                "081109 {} {} INFO dfs.DataNode$PacketResponder: PacketResponder {} for block {} terminating",
                [clock, Number(1, 40), Number(0, 3), blk],
            ),
            TemplateSpec(
                3,
                "081109 {} {} INFO dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: "
                "blockMap updated: {} is added to {} size {}",
                [clock, Number(1, 40), IPv4("10.251", port=True), blk,
                 Number(1024, 67108864)],
            ),
            TemplateSpec(
                0.4,
                "081109 {} {} error dfs.DataNode$DataXceiver: writeBlock {} received exception java.io.IOException",
                [clock, Number(1, 40), blk],
            ),
        ],
        query="error and blk_8846",
    )


def _healthapp() -> LogSpec:
    clock = TimeHMS(0, 24)
    session = Number(30000000, 31000000)
    return LogSpec(
        name="Healthapp",
        description="mobile health app step counter",
        templates=[
            TemplateSpec(
                6,
                "20171223-{}:{}|Step_LSC|{}|onStandStepChanged {}",
                [clock, Number(0, 1000, "03d"), session, Number(1000, 9000)],
            ),
            TemplateSpec(
                4,
                "20171223-{}:{}|Step_ExtSDM|{}|calculateAltitudeWithCache totalAltitude={}",
                [clock, Number(0, 1000, "03d"), session,
                 Enum(["0", "12", "150", "-3", "88"], [15, 30, 25, 15, 15])],
            ),
        ],
        query="Step_ExtSDM and totalAltitude=0",
    )


def _hpc() -> LogSpec:
    epoch = Counter(1077804, 7, 3)
    return LogSpec(
        name="Hpc",
        description="HPC cluster hardware events",
        templates=[
            TemplateSpec(
                4,
                "{} node-{} unix.hw entered unavailable state via {} HWID={}",
                [epoch, Number(0, 256), Word(),
                 Sometimes("3378", Number(3000, 4000), p=0.02)],
            ),
            TemplateSpec(
                6,
                "{} node-{} unix.hw entered available state link up HWID={}",
                [epoch, Number(0, 256), Number(3000, 4000)],
            ),
        ],
        query="unavailable state and HWID=3378",
    )


def _linux() -> LogSpec:
    clock = TimeHMS()
    rhost = Sometimes("221.230.128.214", IPv4("221.230"), p=0.01)
    return LogSpec(
        name="Linux",
        description="auth.log PAM failures",
        templates=[
            TemplateSpec(
                5,
                "Jun 14 {} combo sshd(pam_unix)[{}]: authentication failure; "
                "logname= uid=0 euid=0 tty=NODEVssh ruser= rhost={}",
                [clock, Number(10000, 33000), rhost],
            ),
            TemplateSpec(
                5,
                "Jun 14 {} combo su(pam_unix)[{}]: session opened for user {} by (uid=0)",
                [clock, Number(10000, 33000),
                 Choice(["root", "news", "cyrus", "mail"])],
            ),
        ],
        query="authentication failure and rhost=221.230.128.214",
    )


def _mac() -> LogSpec:
    clock = TimeHMS()
    return LogSpec(
        name="Mac",
        description="macOS system.log",
        templates=[
            TemplateSpec(
                6,
                "Jul  1 {} calvisitor-10-105-160-95 kernel[0]: ARPT: {}: wl0: "
                "wl_update_tcpkeep_seq: Original Seq: {}",
                [clock, Counter(620000, 11, 4), Number(1, 1 << 31)],
            ),
            TemplateSpec(
                4,
                "Jul  1 {} calvisitor-10-105-160-95 com.apple.cts[{}]: request failed Err:{} Errno:{} ({})",
                [clock, Number(100, 900), Enum(["-1", "-2", "0"], [3, 4, 3]),
                 Enum(["1", "2", "35"], [3, 4, 3]), Word()],
            ),
        ],
        query="failed and Err:-1 Errno:1",
    )


def _openstack() -> LogSpec:
    ts = Timestamp(date="2017-05-16", start_seconds=0, step_ms=200)
    pid = Number(2000, 3000)
    return LogSpec(
        name="Openstack",
        description="nova compute log (query uses OR — CLP cannot run it)",
        templates=[
            TemplateSpec(
                9,
                "nova-compute.log {} {} INFO nova.compute.manager [instance: {}] VM Started (Lifecycle Event)",
                [ts, pid, HexId(8)],
            ),
            TemplateSpec(
                0.3,
                "nova-compute.log {} {} WARNING nova.virt.libvirt.driver [instance: {}] "
                "Unexpected error while running command grep -F",
                [ts, pid, HexId(8)],
            ),
            TemplateSpec(
                0.3,
                "nova-compute.log {} {} ERROR nova.compute.manager [instance: {}] Failed to allocate network",
                [ts, pid, HexId(8)],
            ),
        ],
        query="ERROR or WARNING and Unexpected error while running command",
    )


def _proxifier() -> LogSpec:
    clock = TimeHMS()
    host = Enum(
        ["play.google.com:443", "mtalk.google.com:5228", "api.twitter.com:443",
         "cdn.example.net:80"],
        [1, 4, 3, 2],
    )
    return LogSpec(
        name="Proxifier",
        description="desktop proxy connection log",
        templates=[
            TemplateSpec(
                6,
                "[10.30 {}] chrome.exe - {} open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS",
                [clock, host],
            ),
            TemplateSpec(
                4,
                "[10.30 {}] chrome.exe - {} close, {} bytes sent, {} bytes received, lifetime {}:{}",
                [clock, host, Number(100, 100000), Number(100, 1000000),
                 Number(0, 60), Number(0, 60, "02d")],
            ),
        ],
        query="HTTPS and play.google.com:443",
    )


def _spark() -> LogSpec:
    ts = Timestamp(
        fmt="17/06/09 {hh:02d}:{mm:02d}:{ss:02d}",
        start_seconds=20 * 3600,
        step_ms=110,
    )
    return LogSpec(
        name="Spark",
        description="executor logs",
        templates=[
            TemplateSpec(
                6,
                "{} INFO executor.Executor: Finished task {}.0 in stage {}.0 (TID {}). "
                "{} bytes result sent to driver",
                [ts, Number(0, 2000), Number(0, 40), Number(0, 90000),
                 Number(800, 4000)],
            ),
            TemplateSpec(
                3,
                "{} INFO storage.BlockManager: Found block rdd_{}_{} locally",
                [ts, Number(0, 99), Number(0, 4000)],
            ),
            TemplateSpec(
                0.4,
                "{} ERROR executor.Executor: Error sending result StreamResponse(streamId={}) to /{}",
                [ts, HexId(10), IPv4("10.10", port=True)],
            ),
        ],
        query="ERROR and Error sending result",
    )


def _ssh() -> LogSpec:
    clock = TimeHMS()
    attacker = Sometimes("202.100.179.208", IPv4("202.100"), p=0.05)
    return LogSpec(
        name="Ssh",
        description="sshd brute-force log",
        templates=[
            TemplateSpec(
                5,
                "Dec 10 {} LabSZ sshd[{}]: Failed password for invalid user {} from {} port {} ssh2",
                [clock, Number(20000, 30000),
                 Choice(["admin", "oracle", "test", "ubnt", "support"]),
                 attacker, Number(1024, 65536)],
            ),
            TemplateSpec(
                5,
                "Dec 10 {} LabSZ sshd[{}]: Received disconnect from {}: 11: Bye Bye [preauth]",
                [clock, Number(20000, 30000), attacker],
            ),
        ],
        query="Received disconnect from and 202.100.179.208",
    )


def _thunderbird() -> LogSpec:
    epoch = Counter(1131566461, 5, 3)
    clock = TimeHMS()
    return LogSpec(
        name="Thunderbird",
        description="supercomputer syslog",
        templates=[
            TemplateSpec(
                8,
                "- {} 2005.11.09 tbird-admin1 Nov 9 {} local@tbird-admin1 ib_sm.x[{}]: "
                "[ib_sm_sweep.c:{}]: No topology change",
                [epoch, clock, Number(20000, 30000), Number(100, 999)],
            ),
            TemplateSpec(
                0.5,
                "- {} 2005.11.09 dn{} Nov 9 {} dn{}/dn{} kernel: Doorbell ACK timeout for qp {}",
                [epoch, Number(100, 999), clock, Number(100, 999), Number(100, 999),
                 HexId(6)],
            ),
        ],
        query="Doorbell ACK timeout",
    )


def _windows() -> LogSpec:
    clock = TimeHMS()
    return LogSpec(
        name="Windows",
        description="CBS servicing log",
        templates=[
            TemplateSpec(
                6,
                "2016-09-28 {}, Info CBS Loaded Servicing Stack v6.1.7601.{} with Core: "
                "winsxs\\amd64_microsoft-windows-servicingstack_{}",
                [clock, Number(17000, 24000), HexId(16)],
            ),
            TemplateSpec(
                3,
                "2016-09-28 {}, Info CSI {} [SR] Verifying {} components",
                [clock, Number(0, 1 << 31, "08x"), Number(1, 100)],
            ),
            TemplateSpec(
                0.4,
                "2016-09-28 {}, Error CBS Failed to process single phase execution [HRESULT = 0x{}]",
                [clock, Number(0x80004001, 0x80004010, "08x")],
            ),
        ],
        query="Error and Failed to process single phase execution",
    )


def _zookeeper() -> LogSpec:
    ts = Timestamp(
        fmt="2015-07-29 {hh:02d}:{mm:02d}:{ss:02d},{ms:03d}",
        start_seconds=17 * 3600,
        step_ms=150,
    )
    return LogSpec(
        name="Zookeeper",
        description="ensemble server log",
        templates=[
            TemplateSpec(
                6,
                "{} - INFO [NIOServerCxn.Factory:0.0.0.0/0.0.0.0:2181:NIOServerCnxn@{}] - "
                "Closed socket connection for client /{}",
                [ts, Number(800, 1200), IPv4("10.10", port=True)],
            ),
            TemplateSpec(
                3,
                "{} - WARN [QuorumPeer[myid={}]/0.0.0.0:2181:Follower@{}] - Got zxid 0x{} expected 0x1",
                [ts, Number(1, 5), Number(60, 99), HexId(8)],
            ),
            TemplateSpec(
                0.4,
                "{} - ERROR [CommitProcessor:{}:NIOServerCnxn@{}] - "
                "Unexpected Exception: java.nio.channels.CancelledKeyException",
                [ts, Number(1, 5), Number(100, 500)],
            ),
        ],
        query="ERROR and CommitProcessor",
    )
