"""Log-type specifications and the line generator.

A :class:`LogSpec` bundles weighted :class:`TemplateSpec` s (printf-style
static patterns with :mod:`~repro.workloads.fields` generators at the
variable slots), the Table-1-style query command evaluated against it, and
a relative size factor (the paper's logs range from GBs to Log T's 964 GB;
the factor preserves those relative sizes at laptop scale).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import List, Sequence

from .fields import Field


@dataclass
class TemplateSpec:
    """One log statement: a format string plus its field generators."""

    weight: float
    template: str  # "{}"-style placeholders, one per field
    fields: List[Field] = field(default_factory=list)

    def render(self, rng: random.Random, i: int) -> str:
        values = [fld(rng, i) for fld in self.fields]
        return self.template.format(*values)


@dataclass
class LogSpec:
    """A named synthetic log type with its evaluation query."""

    name: str
    templates: List[TemplateSpec]
    query: str
    description: str = ""
    size_factor: float = 1.0  # relative volume vs the suite's base size
    seed: int = 0

    def generate(self, num_lines: int) -> List[str]:
        """Generate ``num_lines * size_factor`` deterministic log lines."""
        total = max(1, int(num_lines * self.size_factor))
        rng = random.Random((self.seed << 16) ^ _stable_hash(self.name))
        # Some fields carry lazily-initialized per-run state (e.g. HexId's
        # shared prefix); work on a fresh copy so repeated generate() calls
        # are byte-identical.
        templates = copy.deepcopy(self.templates)
        weights = [t.weight for t in templates]
        picks = rng.choices(range(len(templates)), weights=weights, k=total)
        return [templates[pick].render(rng, i) for i, pick in enumerate(picks)]


def _stable_hash(text: str) -> int:
    """A hash that doesn't change across interpreter runs (PYTHONHASHSEED)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) & 0x7FFFFFFF
    return value


def total_lines(specs: Sequence[LogSpec], base_lines: int) -> int:
    return sum(max(1, int(base_lines * spec.size_factor)) for spec in specs)
