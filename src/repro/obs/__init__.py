"""Observability: spans, metrics and export for every pipeline.

See docs/OBSERVABILITY.md for the span taxonomy, metric names and export
formats.  Quick start::

    from repro.obs import tracing, render_span_tree, get_registry

    with tracing() as tracer:
        lg.grep("ERROR")
    print(render_span_tree(tracer.last_root()))
    print(get_registry().to_prometheus())
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    render_span_tree,
    set_tracer,
    stage_totals,
    to_chrome_trace,
    tracing,
    write_chrome_trace,
)

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "render_span_tree",
    "stage_totals",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]
