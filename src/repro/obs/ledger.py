"""Thread-local charge channel for per-query resource ledgers.

The :class:`~repro.query.stats.QueryLedger` needs charges from layers that
must not import the query package (blob sources, capsule payload fetches,
the byte scan kernels).  This module is the decoupling point: a leaf with
no intra-package imports, holding one thread-local *entry* — the pair
``(ledger, operator stats)`` installed by the executor's operator context
managers — plus free functions the deep layers call unconditionally.

When no ledger is active (the default), every charge function is a single
``getattr`` returning ``None`` — the same always-on/free-when-off
discipline as :mod:`repro.obs.trace`.  A block runs entirely on one
scheduler thread, so a thread-local entry attributes every deep charge to
the operator that is open on that thread; per-block ledgers are merged by
the executor afterwards, which is what makes the accounting correct under
``query_parallelism > 1``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Tuple

#: (ledger, operator stats) — duck-typed so this module imports nothing.
Entry = Tuple[Any, Any]

_local = threading.local()


def current_entry() -> Optional[Entry]:
    """The active (ledger, operator) of this thread, or None."""
    return getattr(_local, "entry", None)


def set_entry(entry: Optional[Entry]) -> Optional[Entry]:
    """Install *entry* for this thread; returns the previous entry."""
    previous = getattr(_local, "entry", None)
    _local.entry = entry
    return previous


def charge_read(nbytes: int, reads: int = 1) -> None:
    """A ranged store read of *nbytes* (StoreBlobSource.read)."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_read(entry[1], nbytes, reads)


def charge_blob_read(nbytes: int) -> None:
    """A whole-blob store read (eager I/O / ranged-read fallback)."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_blob_read(entry[1], nbytes)


def charge_capsule_fetch(nbytes: int) -> None:
    """A capsule payload materialized (lazy fetch or batched prefetch)."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_capsule_fetch(entry[1], nbytes)


def charge_decompress(nbytes: int) -> None:
    """A capsule payload inflated to *nbytes* plain bytes."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_decompress(entry[1], nbytes)


def charge_rows_scanned(rows: int) -> None:
    """*rows* capsule rows covered by a scan kernel."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_rows_scanned(entry[1], rows)


def charge_decoded_values(count: int) -> None:
    """*count* capsule values decoded (value-cache loads, row fetches)."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_decoded_values(count)


def charge_cache(kind: str, hit: bool) -> None:
    """One lookup of the ``query``/``value``/``box`` cache."""
    entry = getattr(_local, "entry", None)
    if entry is not None:
        entry[0].charge_cache(kind, hit)
