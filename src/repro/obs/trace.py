"""Hierarchical spans: where the time of one operation went.

The whole value proposition of LogGrep is *work avoided* — Capsules proven
irrelevant by stamps, blocks pruned by Bloom filters, bytes never
decompressed.  Spans make that evidence visible per operation: a traced
``grep`` produces a tree ``query → plan / block → block_filter / locate →
match → decompress / reconstruct`` whose stage times sum to the total and
whose attributes carry the byte and capsule counters.

Tracing is off by default and free when off: the module-level tracer is a
:class:`NullTracer` whose spans are a shared no-op singleton, so
instrumented code calls ``get_tracer().span(...)`` unconditionally — no
``if tracing:`` in callers.  :func:`tracing` installs a real
:class:`Tracer` for the duration of a ``with`` block::

    from repro.obs import tracing, render_span_tree

    with tracing() as tracer:
        lg.grep("ERROR")
    print(render_span_tree(tracer.last_root()))

Spans nest via a thread-local stack; fan-out code that enters spans from
worker threads passes ``parent=`` explicitly to attach them to the right
node of the tree (see ``cluster/coordinator.py``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence


class Span:
    """One timed stage with attributes and child spans."""

    __slots__ = (
        "name", "attrs", "children", "start", "end", "tid",
        "_tracer", "_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        #: OS thread the span ran on (for the Chrome trace export's lanes).
        self.tid: int = 0
        self._tracer = tracer
        self._parent = parent

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self.tid = threading.get_ident()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()
        self._tracer._exit(self)

    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> "Span":
        """Set one attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def add(self, key: str, delta: float = 1) -> "Span":
        """Increment a counter attribute."""
        self.attrs[key] = self.attrs.get(key, 0) + delta
        return self

    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        if self.start is None:
            return 0.0
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    @property
    def parent(self) -> Optional["Span"]:
        return self._parent

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All descendants (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1000:.2f}ms, {self.attrs!r})"


class _NullSpan:
    """Shared do-nothing span returned by the NullTracer."""

    __slots__ = ()

    seconds = 0.0
    name = ""
    attrs: Dict[str, Any] = {}
    children: List["Span"] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add(self, key: str, delta: float = 1) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; every span is the shared no-op span.

    This is the default process-wide tracer, so instrumentation costs one
    method call returning a singleton when tracing is disabled.
    """

    enabled = False
    roots: tuple = ()

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def last_root(self) -> None:
        return None

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records a forest of spans; safe under fan-out across threads.

    Spans started while another span of the same thread is open become its
    children; spans started from worker threads attach to the span passed
    as ``parent=`` (or become new roots).
    """

    enabled = True

    def __init__(self):
        self.roots: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(self, name: str, parent: Optional[Span] = None, **attrs) -> Span:
        return Span(self, name, parent=parent, attrs=attrs)

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def last_root(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()

    # ------------------------------------------------------------------
    def _enter(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if span._parent is None and stack:
            span._parent = stack[-1]
        with self._lock:
            if span._parent is None:
                self.roots.append(span)
            else:
                span._parent.children.append(span)
        stack.append(span)

    def _exit(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # exited out of order; drop through it
            del stack[stack.index(span):]


# ----------------------------------------------------------------------
# process-wide tracer
# ----------------------------------------------------------------------
_active: Any = NULL_TRACER


def get_tracer():
    """The process-wide tracer (a NullTracer unless tracing is enabled)."""
    return _active


def set_tracer(tracer) -> Any:
    """Install *tracer* as the process-wide tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable tracing for the duration of a with-block."""
    active = tracer or Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# rendering and summarizing
# ----------------------------------------------------------------------
def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.3g}")
        else:
            parts.append(f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}")
    return "  " + " ".join(parts)


def render_span_tree(root: Optional[Span], total: Optional[float] = None) -> str:
    """Text rendering of a span tree with per-stage percentages of the root."""
    if root is None:
        return "(no spans recorded)"
    total = total if total else (root.seconds or 1e-12)
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        pct = span.seconds / total * 100
        lines.append(
            f"{label:<40} {span.seconds * 1000:9.2f} ms {pct:5.1f}%"
            f"{_format_attrs(span.attrs)}"
        )
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def to_chrome_trace(roots: Sequence[Optional[Span]]) -> Dict[str, Any]:
    """A recorded span forest as a Chrome trace-event (Perfetto) object.

    Every span becomes one complete (``ph: "X"``) event; timestamps are
    microseconds relative to the earliest span start so the timeline
    starts at zero, and each OS thread gets its own compact ``tid`` lane.
    The result serializes to a ``trace.json`` loadable by
    ``chrome://tracing`` and https://ui.perfetto.dev.
    """
    spans = [
        span
        for root in roots
        if root is not None
        for span in root.walk()
        if span.start is not None
    ]
    origin = min((span.start for span in spans), default=0.0)
    lanes: Dict[int, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        lane = lanes.setdefault(span.tid, len(lanes) + 1)
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": "loggrep",
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
                "pid": 1,
                "tid": lane,
                "args": dict(span.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, roots: Sequence[Optional[Span]]) -> int:
    """Write :func:`to_chrome_trace` of *roots* to *path*; returns the
    number of events written."""
    payload = to_chrome_trace(roots)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, default=str)
        handle.write("\n")
    return len(payload["traceEvents"])


def stage_totals(root: Optional[Span]) -> Dict[str, float]:
    """Total seconds per span name across a tree.

    Nested stages are reported independently (``locate`` includes the
    ``decompress`` spans under it), so compare siblings, not the sum.
    """
    totals: Dict[str, float] = {}
    if root is None:
        return totals
    for span in root.walk():
        totals[span.name] = totals.get(span.name, 0.0) + span.seconds
    return totals
