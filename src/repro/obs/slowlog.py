"""Structured slow-query log (JSON lines).

Any query whose wall time crosses ``config.slow_query_ms`` (env
``LOGGREP_SLOW_QUERY_MS``) is captured as one self-contained JSON object:
the raw command, the physical plan as rendered by ``EXPLAIN``, the merged
:class:`~repro.query.stats.QueryStats`, and — because the threshold also
activates the ledger — the full per-operator resource bill.  One record
per query, appended under a process-wide lock so concurrent queries never
interleave partial lines.

Records go to ``config.slow_query_log_path`` (env
``LOGGREP_SLOW_QUERY_LOG``); with no path configured they fall back to a
``logging`` warning on the ``repro.slowlog`` logger, so the signal is
never silently dropped.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Dict, Optional

from .metrics import get_registry

_SLOW_QUERIES = get_registry().counter(
    "loggrep_slow_queries_total", "Queries that crossed the slow-query threshold"
)

_logger = logging.getLogger("repro.slowlog")
_write_lock = threading.Lock()


def build_record(
    query: str,
    mode: str,
    elapsed_ms: float,
    threshold_ms: float,
    plan: str,
    stats: Dict[str, Any],
    ledger: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One slow-query record; keys are stable, the schema is documented in
    docs/OBSERVABILITY.md."""
    return {
        "ts": time.time(),
        "query": query,
        "mode": mode,
        "elapsed_ms": round(elapsed_ms, 3),
        "threshold_ms": threshold_ms,
        "plan": plan,
        "stats": stats,
        "ledger": ledger,
    }


def emit(record: Dict[str, Any], path: Optional[str] = None) -> None:
    """Append *record* as one JSON line to *path* (or log it)."""
    _SLOW_QUERIES.inc()
    line = json.dumps(record, sort_keys=True)
    if path is None:
        _logger.warning("slow query: %s", line)
        return
    with _write_lock:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
