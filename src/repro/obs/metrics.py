"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One registry per process accumulates the counters every pipeline already
produces (QueryStats fields, cache hits, store bytes, cluster per-node
work) plus latency histograms, and exports them in two machine-readable
formats:

* **Prometheus text format** (`to_prometheus`) — what a scrape endpoint or
  node-exporter textfile collector expects;
* **JSON** (`to_json`) — for scripts and the bench reports.

Metrics are always on: incrementing a counter is a dict lookup and an add
under a lock, cheap enough for the hot paths that call it once per query
or per block (never per capsule — per-capsule accounting rides on
QueryStats and is published once per query).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Label sets are keyed by their sorted (key, value) tuples.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds) — sub-millisecond to tens of seconds,
#: matching the interactive-query regime the paper targets.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Prometheus HELP escaping: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()

    def _samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(Counter):
    """A value that can go up and down (set, inc, dec)."""

    kind = "gauge"

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def _reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            self._totals.clear()

    def _samples(self) -> List[Tuple[LabelKey, List[int], float, int]]:
        with self._lock:
            return sorted(
                (key, list(counts), self._sums[key], self._totals[key])
                for key, counts in self._counts.items()
            )


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and exporters."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls) or type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric (objects stay registered — callers keep refs)."""
        for metric in self._metrics.values():
            metric._reset()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        out: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                out.append(f"# HELP {name} {_escape_help(metric.help)}")
            out.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, counts, total_sum, total in metric._samples():
                    # Histogram.observe increments every bucket whose bound
                    # covers the value, so the stored counts are already
                    # cumulative — emit them as-is.
                    for bound, count in zip(metric.buckets, counts):
                        out.append(
                            f"{name}_bucket"
                            f"{_render_labels(key, ('le', _format_value(bound)))} "
                            f"{count}"
                        )
                    out.append(
                        f"{name}_bucket{_render_labels(key, ('le', '+Inf'))} {total}"
                    )
                    out.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(total_sum)}"
                    )
                    out.append(f"{name}_count{_render_labels(key)} {total}")
            else:
                samples = metric._samples()
                if not samples:
                    out.append(f"{name} 0")
                for key, value in samples:
                    out.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        return "\n".join(out) + "\n"

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_dict(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: Dict[str, object] = {"type": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(key),
                        "counts": counts,
                        "sum": total_sum,
                        "count": total,
                    }
                    for key, counts, total_sum, total in metric._samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric._samples()
                ]
            out[name] = entry
        return out


# ----------------------------------------------------------------------
# process-wide registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry
