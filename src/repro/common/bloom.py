"""Trigram Bloom filters for block-level pruning (extension).

The paper filters *within* a block using runtime patterns and Capsule
stamps; an archive with many blocks can additionally skip whole
CapsuleBoxes.  A Bloom filter over the distinct character trigrams of a
block's raw text supports exactly the query model we need: if any trigram
of a (case-sensitive, literal) keyword is absent from the filter, no
substring of any line in the block can equal the keyword, so the block
cannot match — a sound, never-lossy prune.

Sizing: ``bits_per_trigram`` of 10 with 4 hash probes gives ≈1% false
positives; the filter is a few KB per block and compresses well inside
the CapsuleBox metadata.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Set

from .binio import BinaryReader, BinaryWriter

DEFAULT_BITS_PER_KEY = 10
NUM_PROBES = 4
MIN_BITS = 64


def trigrams(text: str) -> Set[str]:
    """The distinct character trigrams of *text*."""
    return {text[i : i + 3] for i in range(len(text) - 2)}


def _probes(key: str, num_bits: int):
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1
    for i in range(NUM_PROBES):
        yield (h1 + i * h2) % num_bits


class BloomFilter:
    """A plain bit-array Bloom filter keyed by strings."""

    __slots__ = ("num_bits", "bits")

    def __init__(self, num_bits: int, bits: int = 0):
        self.num_bits = max(MIN_BITS, num_bits)
        self.bits = bits

    @classmethod
    def build(
        cls, keys: Iterable[str], bits_per_key: int = DEFAULT_BITS_PER_KEY
    ) -> "BloomFilter":
        keys = list(keys)
        bloom = cls(len(keys) * bits_per_key)
        for key in keys:
            bloom.add(key)
        return bloom

    def add(self, key: str) -> None:
        for probe in _probes(key, self.num_bits):
            self.bits |= 1 << probe

    def might_contain(self, key: str) -> bool:
        for probe in _probes(key, self.num_bits):
            if not self.bits >> probe & 1:
                return False
        return True

    def might_contain_text(self, fragment: str) -> bool:
        """Could *fragment* occur as a substring of the indexed text?

        Sound for fragments of length ≥ 3: every trigram of an actual
        occurrence must be in the filter.  Shorter fragments cannot be
        checked and conservatively pass.
        """
        if len(fragment) < 3:
            return True
        return all(self.might_contain(gram) for gram in trigrams(fragment))

    # ------------------------------------------------------------------
    def write(self, writer: BinaryWriter) -> None:
        writer.write_varint(self.num_bits)
        writer.write_bytes(self.bits.to_bytes((self.num_bits + 7) // 8, "little"))

    @classmethod
    def read(cls, reader: BinaryReader) -> "BloomFilter":
        num_bits = reader.read_varint()
        bits = int.from_bytes(reader.read_bytes(), "little")
        return cls(num_bits, bits)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.num_bits == other.num_bits
            and self.bits == other.bits
        )

    @property
    def size_bytes(self) -> int:
        return (self.num_bits + 7) // 8
