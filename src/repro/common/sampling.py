"""Deterministic sampling helpers.

Both the static parser (which mines templates on a 5% sample of a block's
entries) and the runtime-pattern extractor (which probes delimiters on a 5%
sample of a vector's values) sample their inputs.  Sampling is seeded so
that compressing the same block twice produces byte-identical archives — a
property the round-trip tests rely on.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: The paper samples 5% of log entries / variable values (§3, §4.1).
DEFAULT_SAMPLE_RATE = 0.05

#: Never sample fewer than this many items: tiny vectors would otherwise
#: give the extractor nothing to probe.
MIN_SAMPLE = 32


def sample(values: Sequence[T], rate: float, seed: int) -> List[T]:
    """Return a deterministic sample of roughly ``rate * len(values)`` items.

    The sample preserves input order (the extractor relies on picking
    "random" values from it via its own seeded RNG, not on the sample being
    shuffled).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sample rate must be in (0, 1], got {rate}")
    n = len(values)
    want = max(MIN_SAMPLE, int(n * rate))
    if want >= n:
        return list(values)
    rng = random.Random(seed)
    picks = sorted(rng.sample(range(n), want))
    return [values[i] for i in picks]
