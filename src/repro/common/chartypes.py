"""Six-bit character-class masks used by Capsule stamps (paper §2.2, §4.3).

LogGrep summarizes the characters appearing in a value set with a six-bit
type number.  Each bit records whether any value contains a character from
one of six classes:

=====  ==========  =======================================
bit    class       characters
=====  ==========  =======================================
0      DIGIT       ``0``-``9``
1      HEX_LOWER   ``a``-``f``
2      HEX_UPPER   ``A``-``F``
3      ALPHA_LOWER ``g``-``z``
4      ALPHA_UPPER ``G``-``Z``
5      OTHER       everything else
=====  ==========  =======================================

The stamp filter of §5.1 is then a single check: a keyword fragment with
mask ``K`` can only occur in a Capsule with mask ``C`` if ``K & C == K``.
"""

from __future__ import annotations

from typing import Iterable

DIGIT = 0b000001
HEX_LOWER = 0b000010
HEX_UPPER = 0b000100
ALPHA_LOWER = 0b001000
ALPHA_UPPER = 0b010000
OTHER = 0b100000

ALL_CLASSES = DIGIT | HEX_LOWER | HEX_UPPER | ALPHA_LOWER | ALPHA_UPPER | OTHER

CLASS_NAMES = {
    DIGIT: "0-9",
    HEX_LOWER: "a-f",
    HEX_UPPER: "A-F",
    ALPHA_LOWER: "g-z",
    ALPHA_UPPER: "G-Z",
    OTHER: "other",
}

# Precomputed per-character class for the whole 8-bit range: indexing a list
# is the hottest operation during stamping, so avoid branching per char.
_CHAR_CLASS = [OTHER] * 256
for _c in range(ord("0"), ord("9") + 1):
    _CHAR_CLASS[_c] = DIGIT
for _c in range(ord("a"), ord("f") + 1):
    _CHAR_CLASS[_c] = HEX_LOWER
for _c in range(ord("A"), ord("F") + 1):
    _CHAR_CLASS[_c] = HEX_UPPER
for _c in range(ord("g"), ord("z") + 1):
    _CHAR_CLASS[_c] = ALPHA_LOWER
for _c in range(ord("G"), ord("Z") + 1):
    _CHAR_CLASS[_c] = ALPHA_UPPER


def char_class(ch: str) -> int:
    """Return the class bit of a single character."""
    code = ord(ch)
    if code < 256:
        return _CHAR_CLASS[code]
    return OTHER


def type_mask(text: str) -> int:
    """Return the six-bit type number of *text* (0 for the empty string)."""
    mask = 0
    for ch in text:
        code = ord(ch)
        mask |= _CHAR_CLASS[code] if code < 256 else OTHER
        if mask == ALL_CLASSES:
            break
    return mask


def type_mask_of_values(values: Iterable[str]) -> int:
    """Return the combined type number of every value in *values*."""
    mask = 0
    for value in values:
        mask |= type_mask(value)
        if mask == ALL_CLASSES:
            break
    return mask


def mask_subsumes(capsule_mask: int, keyword_mask: int) -> bool:
    """Stamp filter check of §5.1: can a fragment with *keyword_mask* occur
    in data whose combined mask is *capsule_mask*?"""
    return keyword_mask & capsule_mask == keyword_mask


def class_count(mask: int) -> int:
    """Number of distinct character classes present in *mask*."""
    return bin(mask & ALL_CLASSES).count("1")


def describe(mask: int) -> str:
    """Human-readable class list, e.g. ``"0-9|A-F"`` (used in debug dumps)."""
    parts = [name for bit, name in CLASS_NAMES.items() if mask & bit]
    return "|".join(parts) if parts else "empty"
