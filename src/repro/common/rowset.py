"""Bitmap row sets.

Query evaluation in LogGrep is row-set algebra: each keyword match against a
group produces the set of entry rows that may contain the keyword, and the
logical operators of a query command combine these sets.  We back the sets
with arbitrary-precision integers, which gives branch-free AND/OR/NOT over
thousands of rows per machine word.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class RowSet:
    """An immutable-ish set of non-negative row indices backed by a bitmap.

    The universe size ``n`` is carried along so complement (``invert``) is
    well defined.  All binary operators require equal universe sizes.
    """

    __slots__ = ("bits", "n")

    def __init__(self, n: int, bits: int = 0):
        if n < 0:
            raise ValueError("universe size must be non-negative")
        self.n = n
        self.bits = bits & ((1 << n) - 1) if n else 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int) -> "RowSet":
        return cls(n, 0)

    @classmethod
    def full(cls, n: int) -> "RowSet":
        return cls(n, (1 << n) - 1)

    @classmethod
    def from_rows(cls, n: int, rows: Iterable[int]) -> "RowSet":
        bits = 0
        for row in rows:
            if not 0 <= row < n:
                raise IndexError(f"row {row} outside universe of {n}")
            bits |= 1 << row
        return cls(n, bits)

    # ------------------------------------------------------------------
    # mutation (used while accumulating matches)
    # ------------------------------------------------------------------
    def add(self, row: int) -> None:
        if not 0 <= row < self.n:
            raise IndexError(f"row {row} outside universe of {self.n}")
        self.bits |= 1 << row

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def _check(self, other: "RowSet") -> None:
        if self.n != other.n:
            raise ValueError(f"universe mismatch: {self.n} vs {other.n}")

    def __and__(self, other: "RowSet") -> "RowSet":
        self._check(other)
        return RowSet(self.n, self.bits & other.bits)

    def __or__(self, other: "RowSet") -> "RowSet":
        self._check(other)
        return RowSet(self.n, self.bits | other.bits)

    def __sub__(self, other: "RowSet") -> "RowSet":
        self._check(other)
        return RowSet(self.n, self.bits & ~other.bits)

    def invert(self) -> "RowSet":
        return RowSet(self.n, ~self.bits)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, row: int) -> bool:
        return 0 <= row < self.n and bool(self.bits >> row & 1)

    def __len__(self) -> int:
        return bin(self.bits).count("1")

    def __bool__(self) -> bool:
        return self.bits != 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RowSet) and self.n == other.n and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.n, self.bits))

    def __iter__(self) -> Iterator[int]:
        bits = self.bits
        row = 0
        while bits:
            low = bits & -bits
            row = low.bit_length() - 1
            yield row
            bits ^= low

    def rows(self) -> List[int]:
        return list(self)

    def is_full(self) -> bool:
        return self.n > 0 and self.bits == (1 << self.n) - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shown = self.rows()
        if len(shown) > 8:
            shown = shown[:8] + ["..."]  # type: ignore[list-item]
        return f"RowSet(n={self.n}, rows={shown})"
