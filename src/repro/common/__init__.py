"""Shared substrates: character classes, row sets, text algorithms,
tokenization, binary I/O and deterministic sampling."""

from .chartypes import type_mask, type_mask_of_values, mask_subsumes
from .errors import CompressionError, FormatError, QuerySyntaxError, ReproError
from .rowset import RowSet

__all__ = [
    "type_mask",
    "type_mask_of_values",
    "mask_subsumes",
    "RowSet",
    "ReproError",
    "FormatError",
    "QuerySyntaxError",
    "CompressionError",
]
