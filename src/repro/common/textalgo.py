"""Text-search algorithms used by the fixed-length matcher (paper §5.2).

The paper's point is architectural: padding every value of a Capsule to a
fixed width lets the matcher use Boyer–Moore (which skips characters and
therefore cannot count skipped delimiters) because the hit row is simply
``position // width``.  The variable-length ablation (``w/o fixed``) must
fall back to KMP over delimiter-separated data and count delimiters.

Three engines are provided:

* ``"boyer-moore"`` — bad-character-rule Boyer–Moore (the paper's choice);
* ``"kmp"`` — Knuth–Morris–Pratt (the ablation's choice);
* ``"native"`` — CPython's ``str.find`` (crochemore-perrin), for users who
  want raw speed rather than fidelity.

All engines yield *every* (possibly overlapping) occurrence position.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

ENGINES = ("boyer-moore", "kmp", "native")


def find_all(haystack: str, needle: str, engine: str = "native") -> Iterator[int]:
    """Yield every start position of *needle* in *haystack* (overlapping)."""
    if engine == "boyer-moore":
        return boyer_moore_all(haystack, needle)
    if engine == "kmp":
        return kmp_all(haystack, needle)
    if engine == "native":
        return native_all(haystack, needle)
    raise ValueError(f"unknown search engine {engine!r}; pick one of {ENGINES}")


def native_all(haystack: str, needle: str) -> Iterator[int]:
    if not needle:
        return
    pos = haystack.find(needle)
    while pos != -1:
        yield pos
        pos = haystack.find(needle, pos + 1)


def boyer_moore_all(haystack: str, needle: str) -> Iterator[int]:
    """Boyer–Moore with the bad-character rule.

    The bad-character rule alone already gives the sub-linear skipping
    behaviour the paper relies on; the good-suffix rule is omitted because it
    never changes which positions are reported.
    """
    m = len(needle)
    n = len(haystack)
    if m == 0 or m > n:
        return
    # Last occurrence of each character in the needle.
    last = {}
    for i, ch in enumerate(needle):
        last[ch] = i
    last_get = last.get
    pos = 0
    limit = n - m
    while pos <= limit:
        j = m - 1
        while j >= 0 and needle[j] == haystack[pos + j]:
            j -= 1
        if j < 0:
            yield pos
            pos += 1
        else:
            skip = j - last_get(haystack[pos + j], -1)
            pos += skip if skip > 0 else 1


def kmp_failure(needle: str) -> List[int]:
    """The classic KMP failure function (length of longest proper
    prefix-suffix for every prefix of *needle*)."""
    fail = [0] * len(needle)
    k = 0
    for i in range(1, len(needle)):
        while k and needle[i] != needle[k]:
            k = fail[k - 1]
        if needle[i] == needle[k]:
            k += 1
        fail[i] = k
    return fail


def kmp_all(haystack: str, needle: str) -> Iterator[int]:
    """Knuth–Morris–Pratt; visits every haystack character exactly once."""
    m = len(needle)
    if m == 0 or m > len(haystack):
        return
    fail = kmp_failure(needle)
    k = 0
    for i, ch in enumerate(haystack):
        while k and ch != needle[k]:
            k = fail[k - 1]
        if ch == needle[k]:
            k += 1
        if k == m:
            yield i - m + 1
            k = fail[k - 1]


def longest_common_substring(a: str, b: str) -> str:
    """Longest common substring of two strings (first-leftmost on ties).

    Used by the tree-expanding extractor (§4.1) to propose delimiters:
    values of the same sub-variable vector tend to share literal fragments
    like ``"F8"`` in Fig 4.  Dynamic programming over the shorter string's
    suffix automaton is overkill; the vectors sampled here are short ids, so
    the O(len(a)*len(b)) rolling-row DP is appropriate and allocation-light.
    """
    if not a or not b:
        return ""
    if len(a) < len(b):
        a, b = b, a
    best_len = 0
    best_end = 0  # end position in `a`
    prev = [0] * (len(b) + 1)
    for i, ca in enumerate(a):
        cur = [0] * (len(b) + 1)
        for j, cb in enumerate(b):
            if ca == cb:
                length = prev[j] + 1
                cur[j + 1] = length
                if length > best_len:
                    best_len = length
                    best_end = i + 1
        prev = cur
    return a[best_end - best_len : best_end]


def random_nonalnum_char(value: str, rng: random.Random) -> Optional[str]:
    """Pick a random non-alphanumeric character of *value*, or None."""
    candidates = [ch for ch in value if not ch.isalnum()]
    if not candidates:
        return None
    return rng.choice(candidates)


def split_first(value: str, delimiter: str) -> Optional[Tuple[str, str]]:
    """Split *value* at the first occurrence of *delimiter*.

    Returns ``(left, right)`` excluding the delimiter itself, or ``None``
    when the delimiter does not occur.
    """
    pos = value.find(delimiter)
    if pos == -1:
        return None
    return value[:pos], value[pos + len(delimiter) :]
