"""Length-prefixed binary record I/O for on-disk archive formats.

CapsuleBoxes, CLP archives and the mini-ES index are all serialized through
this small reader/writer pair so that every on-disk format in the repo uses
one framing convention: little-endian fixed-width integers and
varint-length-prefixed byte strings.
"""

from __future__ import annotations

import io
import struct
from array import array
from typing import List

from .errors import FormatError


class BinaryWriter:
    """Appends primitive values to an in-memory buffer."""

    def __init__(self) -> None:
        self._buf = io.BytesIO()

    def write_u8(self, value: int) -> None:
        self._buf.write(struct.pack("<B", value))

    def write_u32(self, value: int) -> None:
        self._buf.write(struct.pack("<I", value))

    def write_u64(self, value: int) -> None:
        self._buf.write(struct.pack("<Q", value))

    def write_varint(self, value: int) -> None:
        if value < 0:
            raise ValueError("varints are unsigned")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buf.write(bytes((byte | 0x80,)))
            else:
                self._buf.write(bytes((byte,)))
                return

    def write_bytes(self, data: bytes) -> None:
        self.write_varint(len(data))
        self._buf.write(data)

    def write_str(self, text: str) -> None:
        self.write_bytes(text.encode("utf-8"))

    def write_str_list(self, items: List[str]) -> None:
        self.write_varint(len(items))
        for item in items:
            self.write_str(item)

    def write_u32_list(self, items: List[int]) -> None:
        self.write_varint(len(items))
        for item in items:
            self.write_varint(item)

    def write_u32_array(self, items: List[int]) -> None:
        """Bulk u32 list as a little-endian array blob.

        Unlike :meth:`write_u32_list` this trades a few bytes (recovered by
        the enclosing zlib pass) for C-speed parsing — used for per-entry
        data like group line ids, which dominate metadata volume.
        """
        blob = array("I", items)
        if blob.itemsize != 4:  # pragma: no cover - exotic platforms
            raise FormatError("platform lacks a 4-byte unsigned array type")
        self.write_bytes(blob.tobytes())

    def getvalue(self) -> bytes:
        return self._buf.getvalue()


class BinaryReader:
    """Reads values written by :class:`BinaryWriter` in the same order."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise FormatError("truncated archive: read past end of buffer")
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def read_u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_varint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise FormatError("varint too long")

    def read_bytes(self) -> bytes:
        return self._take(self.read_varint())

    def read_str(self) -> str:
        return self.read_bytes().decode("utf-8")

    def read_str_list(self) -> List[str]:
        return [self.read_str() for _ in range(self.read_varint())]

    def read_u32_list(self) -> List[int]:
        return [self.read_varint() for _ in range(self.read_varint())]

    def read_u32_array(self) -> List[int]:
        blob = array("I")
        blob.frombytes(self.read_bytes())
        return blob.tolist()

    def at_end(self) -> bool:
        return self._pos == len(self._data)

    def remaining(self) -> int:
        return len(self._data) - self._pos
