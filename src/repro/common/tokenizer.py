"""The shared token model.

Both the static parser (compression side) and the query planner must agree
on what a "token" is: the paper tokenizes log entries and search strings
with the same delimiters so that a keyword can be matched against whole
tokens.  We use the single space as the delimiter, which is lossless:
``" ".join(line.split(" ")) == line`` holds for every line (including runs
of spaces, which produce empty tokens).

A wildcard may appear *within* a token but never spans delimiters — the
paper states this restriction explicitly (§3, Query).
"""

from __future__ import annotations

from typing import List

DELIMITER = " "

#: Characters that terminate a token.  Only space in this model; kept as a
#: named constant so the query layer and parser cannot drift apart.
TOKEN_DELIMITERS = frozenset(DELIMITER)


def tokenize(line: str) -> List[str]:
    """Split a log line (or search string) into tokens.

    The split is exact and reversible via :func:`join_tokens`.
    """
    return line.split(DELIMITER)


def join_tokens(tokens: List[str]) -> str:
    """Inverse of :func:`tokenize`."""
    return DELIMITER.join(tokens)


def is_single_token(text: str) -> bool:
    """True when *text* contains no token delimiter."""
    return DELIMITER not in text
