"""Cheap wall-clock timestamp extraction from raw log lines.

LogGrep's logical clock is the line id, but real queries start with a
wall-clock window ("errors between 09:00 and 09:05").  Blocks are written
in arrival order, so a per-block [min, max] timestamp range is enough to
prune whole blocks before any Bloom or stamp check runs — the range is
computed once at compress time from the raw lines (ROADMAP item 1
groundwork) and travels in the prune-index sidecar.

Extraction is deliberately conservative: only an anchored
``YYYY-MM-DD[ T]HH:MM:SS[.ffffff]`` prefix (the overwhelmingly common
cloud-log shape) is recognized.  Lines without a parseable timestamp
contribute nothing to the block's range; a block with *no* timestamped
lines has an unknown range and is never time-pruned.
"""

from __future__ import annotations

import calendar
import re
from typing import Dict, Iterable, Optional, Tuple

_TS_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[ T](\d{2}):(\d{2}):(\d{2})(?:[.,](\d{1,6}))?"
)

#: (year, month, day) → epoch seconds at midnight UTC.  Logs repeat the
#: same few dates millions of times; memoizing the calendar arithmetic
#: keeps per-line extraction to one regex match plus integer math.
_DAY_EPOCH: Dict[Tuple[int, int, int], int] = {}


def extract_timestamp(line: str) -> Optional[float]:
    """Epoch seconds (UTC) of the line's leading timestamp, or None."""
    match = _TS_RE.match(line)
    if match is None:
        return None
    year, month, day = int(match[1]), int(match[2]), int(match[3])
    key = (year, month, day)
    base = _DAY_EPOCH.get(key)
    if base is None:
        if not 1 <= month <= 12 or not 1 <= day <= 31:
            return None
        base = calendar.timegm((year, month, day, 0, 0, 0))
        _DAY_EPOCH[key] = base
    seconds = base + int(match[4]) * 3600 + int(match[5]) * 60 + int(match[6])
    fraction = match[7]
    if fraction:
        return seconds + int(fraction) / 10 ** len(fraction)
    return float(seconds)


def time_range_of(
    lines: Iterable[str],
) -> Tuple[Optional[float], Optional[float]]:
    """(min, max) timestamp over *lines*; (None, None) when none parse."""
    lo: Optional[float] = None
    hi: Optional[float] = None
    for line in lines:
        ts = extract_timestamp(line)
        if ts is None:
            continue
        if lo is None or ts < lo:
            lo = ts
        if hi is None or ts > hi:
            hi = ts
    return lo, hi


def parse_time_arg(text: str) -> float:
    """A CLI time bound: epoch seconds, or the log timestamp format."""
    try:
        return float(text)
    except ValueError:
        pass
    ts = extract_timestamp(text)
    if ts is None:
        raise ValueError(
            f"unrecognized time {text!r} (want epoch seconds or "
            "YYYY-MM-DD HH:MM:SS)"
        )
    return ts


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age_arg(text: str) -> float:
    """A CLI age: seconds, or a number with an s/m/h/d/w suffix.

    ``"30d"`` → 30 days, ``"12h"`` → 12 hours, ``"45m"`` → 45 minutes,
    ``"3600"`` and ``"3600s"`` → 3600 seconds.  Used by the lifecycle
    ``--older-than`` arguments.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty age")
    unit = 1.0
    number = text
    if text[-1].lower() in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1].lower()]
        number = text[:-1]
    try:
        value = float(number)
    except ValueError:
        raise ValueError(
            f"unrecognized age {text!r} (want seconds or <number><s|m|h|d|w>)"
        ) from None
    if value < 0:
        raise ValueError(f"age must be non-negative, got {text!r}")
    return value * unit
