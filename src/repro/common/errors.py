"""Exception hierarchy shared by the whole package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class FormatError(ReproError):
    """A serialized archive / CapsuleBox is malformed or truncated."""


class QuerySyntaxError(ReproError):
    """A query command could not be parsed."""


class CompressionError(ReproError):
    """The compression pipeline hit an unrecoverable condition."""


class BudgetExceeded(ReproError):
    """A query overran one of its soft resource budgets.

    Raised from the charge path the moment the shared
    :class:`~repro.query.stats.BudgetMeter` crosses ``max_read_bytes`` or
    ``max_decoded_values``, so an expensive query aborts instead of
    thrashing the host.  ``ledger`` carries the partial
    :class:`~repro.query.stats.QueryLedger` (attached by the executor on
    the way out), so the caller can see exactly where the budget went.
    """

    def __init__(
        self,
        resource: str,
        limit: int,
        spent: int,
        ledger: object = None,
    ):
        super().__init__(
            f"query budget exceeded: {resource} spent {spent} > limit {limit}"
        )
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.ledger = ledger

