"""Exception hierarchy shared by the whole package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class FormatError(ReproError):
    """A serialized archive / CapsuleBox is malformed or truncated."""


class QuerySyntaxError(ReproError):
    """A query command could not be parsed."""


class CompressionError(ReproError):
    """The compression pipeline hit an unrecoverable condition."""
