"""The overall-cost model — Equation 1 of the paper (§6).

::

    C_total = C_storage · Duration · Size / CompressionRatio
            + C_CPU · Size / CompressionSpeed
            + C_CPU · QueryLatency · QueryFrequency

Defaults are the paper's: $0.017 per GB-month of storage (erasure coding
included), 6 months retention, $0.016 per CPU-hour, and a default query
frequency of 100 over the retention period.  Costs are reported per TB of
raw logs, matching Fig 8's y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9
TB = 1e12


@dataclass(frozen=True)
class CostParameters:
    """Pricing constants of Equation 1."""

    storage_dollars_per_gb_month: float = 0.017
    duration_months: float = 6.0
    cpu_dollars_per_hour: float = 0.016
    query_frequency: float = 100.0


@dataclass(frozen=True)
class CostBreakdown:
    """Per-TB dollar cost, split the way Fig 8's stacked bars are."""

    storage: float
    compression: float
    query: float

    @property
    def total(self) -> float:
        return self.storage + self.compression + self.query

    def scaled(self, factor: float) -> "CostBreakdown":
        return CostBreakdown(
            self.storage * factor, self.compression * factor, self.query * factor
        )


def overall_cost(
    compression_ratio: float,
    compression_speed_mb_s: float,
    query_latency_seconds_per_tb: float,
    params: CostParameters = CostParameters(),
) -> CostBreakdown:
    """Equation 1 evaluated for 1 TB of raw logs.

    ``query_latency_seconds_per_tb`` is the latency of one query over a TB
    of (compressed) logs; the model multiplies it by the query frequency.
    """
    if compression_ratio <= 0 or compression_speed_mb_s <= 0:
        raise ValueError("ratio and speed must be positive")
    size_gb = TB / GB
    storage = (
        params.storage_dollars_per_gb_month
        * params.duration_months
        * size_gb
        / compression_ratio
    )
    compression_hours = (TB / (compression_speed_mb_s * 1e6)) / 3600.0
    compression = params.cpu_dollars_per_hour * compression_hours
    query_hours = query_latency_seconds_per_tb * params.query_frequency / 3600.0
    query = params.cpu_dollars_per_hour * query_hours
    return CostBreakdown(storage, compression, query)


def breakeven_query_frequency(
    base: CostBreakdown,
    base_latency_s: float,
    other: CostBreakdown,
    other_latency_s: float,
    params: CostParameters = CostParameters(),
) -> float:
    """Query frequency above which *other* becomes cheaper than *base*.

    This reproduces §6.1's computation of when ElasticSearch's lower query
    latency would amortize its storage/ingest premium.  Returns ``inf``
    when *other* is never cheaper (its latency is not lower).
    """
    fixed_base = base.storage + base.compression
    fixed_other = other.storage + other.compression
    per_query_base = params.cpu_dollars_per_hour * base_latency_s / 3600.0
    per_query_other = params.cpu_dollars_per_hour * other_latency_s / 3600.0
    saving_per_query = per_query_base - per_query_other
    if saving_per_query <= 0:
        return float("inf")
    premium = fixed_other - fixed_base
    if premium <= 0:
        return 0.0
    return premium / saving_per_query
