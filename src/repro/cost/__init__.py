"""Equation 1: the overall-cost model of the evaluation."""

from .model import (
    CostBreakdown,
    CostParameters,
    breakeven_query_frequency,
    overall_cost,
)

__all__ = [
    "CostParameters",
    "CostBreakdown",
    "overall_cost",
    "breakeven_query_frequency",
]
