"""The cluster coordinator: distributed compress and scatter/gather query.

``ClusterLogGrep`` is the distributed analogue of
:class:`~repro.core.loggrep.LogGrep` (the paper's §8 future work):

* **ingest** — raw lines are split into blocks; each block's *primary*
  node (rendezvous hashing) compresses it locally and the coordinator
  fans the archive bytes *and prune summary* out to the remaining
  replicas.  Blocks compress in parallel across nodes.
* **query** — one pre-built plan is scattered through the
  :class:`~repro.cluster.scatter.ScatterGather` engine (bounded fan-out,
  per-shard deadlines, retry-with-backoff across replicas, hedged reads
  after a latency percentile).  Gathers ship **partials**, never raw
  lines: ``count`` ships counts, aggregates ship commutative
  ``AggregatePartial``s, and ``grep`` ships per-group row-set bitmaps
  with reconstruction deferred to a final bounded fetch of exactly the
  kept rows — so gather bytes scale with matches, not corpus.
* **membership** — rendezvous placement is recomputed on node
  join/leave; :meth:`rebalance` moves only the replicas whose best nodes
  changed, and :meth:`repair` re-replicates after a crash.
* **failures** — a dead replica is skipped; a slow one is hedged or
  timed out; a query only fails once some block exhausts its replica
  attempt budget.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..blockstore.block import split_lines
from ..blockstore.index import BlockSummary
from ..blockstore.remote import FaultProfile, RemoteStore
from ..blockstore.store import ArchiveStore, MemoryStore
from ..common.errors import ReproError
from ..core.config import LogGrepConfig
from ..core.loggrep import AggregateResult, GrepResult, LogGrep
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..query.aggregate import AggregateSpec, Bucket, NumericStats, make_partial
from ..query.executor import Entry
from ..query.modes import AggregateKind
from ..query.plan import OutputMode, QueryPlan, build_aggregate_plan, build_plan
from ..query.stats import QueryStats
from .node import WorkerNode
from .placement import replica_nodes
from .scatter import (
    LatencyTracker,
    ScatterConfig,
    ScatterGather,
    ShardError,
    ShardOutcome,
    ShardTask,
)

logger = logging.getLogger(__name__)

_CLUSTER_AGG_QUERIES = get_registry().counter(
    "loggrep_cluster_agg_queries_total",
    "Aggregate queries scattered by the coordinator",
)
_CLUSTER_AGG_PARTIALS = get_registry().counter(
    "loggrep_agg_partials_merged_total",
    "Per-block aggregate partials folded into a merged result",
)
_CLUSTER_QUERIES = get_registry().counter(
    "loggrep_cluster_queries_total",
    "Queries scattered by the coordinator, by mode",
)
_CLUSTER_REBALANCE_MOVES = get_registry().counter(
    "loggrep_cluster_rebalance_moves_total",
    "Replica copies created or dropped by rebalancing",
)


class ClusterError(ReproError):
    """The cluster cannot satisfy a request (e.g. all replicas down)."""


@dataclass
class ClusterStats:
    """A snapshot of cluster health and balance."""

    nodes: int
    alive_nodes: int
    blocks: int
    replication: int
    blocks_per_node: Dict[str, int] = field(default_factory=dict)
    bytes_per_node: Dict[str, int] = field(default_factory=dict)


@dataclass
class ShardReport:
    """Delivery accounting of one shard of one query phase."""

    block: str
    phase: str  # "rows" | "lines" | "partial" | "count"
    node: str
    attempts: int
    retries: int
    timeouts: int
    hedged: bool
    hedge_won: bool
    elapsed_ms: float
    wire_bytes: int


@dataclass
class ClusterQueryReport:
    """Per-shard roll-up of one distributed query (the cluster ANALYZE)."""

    command: str
    mode: str
    shards: List[ShardReport] = field(default_factory=list)
    elapsed_ms: float = 0.0

    @property
    def wire_bytes(self) -> int:
        return sum(shard.wire_bytes for shard in self.shards)

    @property
    def hedges(self) -> int:
        return sum(1 for shard in self.shards if shard.hedged)

    @property
    def retries(self) -> int:
        return sum(shard.retries for shard in self.shards)

    def add(self, phase: str, outcomes: Sequence[ShardOutcome]) -> None:
        for outcome in outcomes:
            self.shards.append(
                ShardReport(
                    block=outcome.name,
                    phase=phase,
                    node=outcome.node_id,
                    attempts=outcome.attempts,
                    retries=outcome.retries,
                    timeouts=outcome.timeouts,
                    hedged=outcome.hedged,
                    hedge_won=outcome.hedge_won,
                    elapsed_ms=outcome.elapsed * 1000.0,
                    wire_bytes=outcome.wire_bytes,
                )
            )

    def render(self) -> str:
        """The per-shard table plus gather totals, ANALYZE-style."""
        header = (
            f"cluster query {self.command!r} (mode={self.mode}): "
            f"{len(self.shards)} shard(s), {self.wire_bytes} gather byte(s), "
            f"{self.hedges} hedged, {self.retries} retrie(s), "
            f"{self.elapsed_ms:.1f} ms"
        )
        columns = (
            "block", "phase", "node", "att", "rty", "t/o", "hedge",
            "ms", "wire B",
        )
        rows = [columns]
        for shard in self.shards:
            hedge = "-"
            if shard.hedged:
                hedge = "won" if shard.hedge_won else "lost"
            rows.append(
                (
                    shard.block,
                    shard.phase,
                    shard.node,
                    str(shard.attempts),
                    str(shard.retries),
                    str(shard.timeouts),
                    hedge,
                    f"{shard.elapsed_ms:.1f}",
                    str(shard.wire_bytes),
                )
            )
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(columns))
        ]
        lines = [header]
        for row in rows:
            lines.append(
                "  "
                + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


class ClusterLogGrep:
    """A small LogGrep cluster with replicated block placement."""

    def __init__(
        self,
        num_nodes: int = 4,
        replication: int = 2,
        config: Optional[LogGrepConfig] = None,
        parallelism: Optional[int] = None,
        scatter: Optional[ScatterConfig] = None,
        remote_profile: Optional[FaultProfile] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        if replication > num_nodes:
            raise ValueError("replication factor cannot exceed the node count")
        self.config = config or LogGrepConfig()
        self.replication = replication
        self.scatter_config = scatter or ScatterConfig(
            fanout_concurrency=parallelism or max(2, num_nodes)
        )
        #: When set, every node's store is a fault-injecting RemoteStore
        #: (distinct deterministic seed per node).
        self._remote_profile = remote_profile
        self._stores_created = 0
        self.nodes: Dict[str, WorkerNode] = {}
        for i in range(num_nodes):
            self._create_node(f"node-{i}")
        self._placement: Dict[str, List[str]] = {}  # block name → replica ids
        self._next_block_id = 0
        self._next_line_id = 0
        self.raw_bytes = 0
        self.latency = LatencyTracker()
        self._engine = ScatterGather(
            self.scatter_config,
            self.latency,
            alive=self._node_alive,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=parallelism or max(2, num_nodes)
        )
        #: Per-shard roll-up of the most recent query (also returned in
        #: ``result.report`` when ``analyze=True``).
        self.last_report: Optional[ClusterQueryReport] = None

    # ------------------------------------------------------------------
    def _make_store(self) -> ArchiveStore:
        if self._remote_profile is None:
            return MemoryStore()
        profile = dataclasses.replace(
            self._remote_profile,
            seed=self._remote_profile.seed + 9973 * self._stores_created,
        )
        return RemoteStore(MemoryStore(), profile)

    def _create_node(self, node_id: str) -> WorkerNode:
        node = WorkerNode(node_id, self.config, store=self._make_store())
        self._stores_created += 1
        self.nodes[node_id] = node
        return node

    def node(self, node_id: str) -> WorkerNode:
        return self.nodes[node_id]

    def _node_alive(self, node_id: str) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def _alive_ids(self) -> List[str]:
        return [nid for nid, node in self.nodes.items() if node.alive]

    def set_straggler(self, node_id: str, latency_s: float) -> None:
        """Give one node a fixed per-RPC service latency (fault drill)."""
        self.nodes[node_id].rpc_latency_s = latency_s

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def compress(self, lines: Sequence[str]) -> None:
        """Distribute and compress *lines* across the cluster."""
        blocks = []
        for block in split_lines(lines, self.config.block_bytes):
            block.block_id = self._next_block_id
            block.first_line_id = self._next_line_id
            self._next_block_id += 1
            self._next_line_id += block.num_lines
            self.raw_bytes += block.raw_bytes
            blocks.append(block)

        tracer = get_tracer()
        with tracer.span("cluster.compress", blocks=len(blocks)) as cspan:
            def ingest_one(block) -> None:
                name = f"block-{block.block_id:08d}.lgcb"
                replicas = replica_nodes(name, self._alive_ids(), self.replication)
                if not replicas:
                    raise ClusterError("no alive node to ingest into")
                with tracer.span(
                    "cluster.ingest_block",
                    parent=cspan,
                    block=name,
                    node=replicas[0],
                ) as ispan:
                    primary = self.nodes[replicas[0]]
                    name, data, summary = primary.compress_and_store(block)
                    for replica_id in replicas[1:]:
                        self.nodes[replica_id].store_replica(
                            name, data, summary
                        )
                    self._placement[name] = replicas
                    ispan.set("replicas", len(replicas))

            list(self._pool.map(ingest_one, blocks))

    # ------------------------------------------------------------------
    # scatter/gather plumbing
    # ------------------------------------------------------------------
    def _shard_tasks(self, request: object = None) -> List[ShardTask]:
        return [
            ShardTask(name, list(self._placement[name]), request)
            for name in sorted(self._placement)
        ]

    def _scatter(self, tasks, action, kind: str) -> List[ShardOutcome]:
        try:
            return self._engine.map(tasks, action, kind)
        except ShardError as exc:
            logger.warning("scatter failed: %s", exc)
            raise ClusterError(str(exc)) from exc

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def grep(
        self,
        command: str,
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
        limit: Optional[int] = None,
        analyze: bool = False,
    ) -> GrepResult:
        """Scatter one pre-built ROWS plan, gather row-set partials, then
        reconstruct with a final bounded fetch.

        The command is parsed and planned exactly once; every replica
        receives the same :class:`~repro.query.plan.QueryPlan`.  Shards
        return (group → row bitmap) partials — a few bytes per matched
        group — and only the blocks (and rows) the coordinator actually
        keeps are rendered back into lines, preferably by the replica
        that already served the locate (its capsules are warm).  With
        ``limit`` the fetch stops at the block prefix covering the first
        *limit* matches (blocks partition the line-id space in name
        order), so a point lookup over a huge archive reconstructs a
        handful of blocks.
        """
        tracer = get_tracer()
        start = time.perf_counter()
        stats = QueryStats()
        report = ClusterQueryReport(command, OutputMode.ROWS.value)
        plan = build_plan(
            command, OutputMode.ROWS, ignore_case,
            from_time=from_time, to_time=to_time,
        )
        _CLUSTER_QUERIES.inc(mode=plan.mode.value)
        with tracer.span("cluster.query", command=command) as qspan:
            with tracer.span("cluster.fan_out") as fan:
                def locate(nid: str, task: ShardTask):
                    with tracer.span(
                        "cluster.query_block",
                        parent=fan,
                        block=task.name,
                        node=nid,
                    ):
                        return self.nodes[nid].query_block(task.name, plan)

                outcomes = self._scatter(
                    self._shard_tasks(), locate, kind="rows"
                )
            # Gather on the coordinator thread, after the fan-out has
            # fully drained — per-shard stats never merge concurrently.
            report.add("rows", outcomes)
            total = 0
            for outcome in outcomes:
                stats.merge(outcome.stats)
                total += outcome.count
            entries = self._fetch_entries(plan, outcomes, limit, stats, report)
            stats.entries_matched = total
            qspan.set("blocks", len(outcomes))
            qspan.set("entries_matched", total)
        elapsed = time.perf_counter() - start
        report.elapsed_ms = elapsed * 1000.0
        self.last_report = report
        stats.publish(elapsed)
        return GrepResult(
            [text for _, text in entries],
            [line_id for line_id, _ in entries],
            stats,
            elapsed,
            report=report.render() if analyze else "",
        )

    def grep_many(
        self,
        commands: Sequence[str],
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[GrepResult]:
        """Scatter one **multi-plan batch** per shard, gather per plan.

        Equivalent to ``[self.grep(c) for c in commands]``, but each
        replica serves all the plans from a single RPC through its
        shared-scan pass: one LoadBox per block for the whole batch, one
        prune decision and one Match per distinct term.  Gathers stay
        rowset-shaped; reconstruction remains a per-plan bounded fetch
        of exactly the kept rows.
        """
        commands = list(commands)
        if not commands:
            return []
        tracer = get_tracer()
        start = time.perf_counter()
        plans = [
            build_plan(
                command, OutputMode.ROWS, ignore_case,
                from_time=from_time, to_time=to_time,
            )
            for command in commands
        ]
        report = ClusterQueryReport(
            "; ".join(commands), OutputMode.ROWS.value
        )
        for plan in plans:
            _CLUSTER_QUERIES.inc(mode=plan.mode.value)
        with tracer.span(
            "cluster.query_batch", queries=len(plans)
        ) as qspan:
            with tracer.span("cluster.fan_out") as fan:
                def locate(nid: str, task: ShardTask):
                    with tracer.span(
                        "cluster.query_block_batch",
                        parent=fan,
                        block=task.name,
                        node=nid,
                    ):
                        return self.nodes[nid].query_block_batch(
                            task.name, plans
                        )

                outcomes = self._scatter(
                    self._shard_tasks(), locate, kind="rows"
                )
            report.add("rows", outcomes)
            results: List[Optional[GrepResult]] = [None] * len(plans)
            for pos, plan in enumerate(plans):
                stats = QueryStats()
                # Split each shard's batched payload back into per-plan
                # pseudo-outcomes so the bounded fetch (and its warm-
                # replica preference) is reused verbatim.  Wire bytes
                # stay on the batched outcome — the split carries none.
                per_plan = [
                    dataclasses.replace(
                        outcome,
                        payload=outcome.payload[pos][0],
                        count=outcome.payload[pos][1],
                        stats=outcome.payload[pos][2],
                        wire_bytes=0,
                    )
                    for outcome in outcomes
                ]
                total = 0
                for outcome in per_plan:
                    stats.merge(outcome.stats)
                    total += outcome.count
                entries = self._fetch_entries(
                    plans[pos], per_plan, limit, stats, report
                )
                stats.entries_matched = total
                elapsed = time.perf_counter() - start
                stats.publish(elapsed)
                results[pos] = GrepResult(
                    [text for _, text in entries],
                    [line_id for line_id, _ in entries],
                    stats,
                    elapsed,
                )
            qspan.set("blocks", len(outcomes))
        report.elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.last_report = report
        return [r for r in results if r is not None]

    def aggregate_many(
        self,
        specs: Sequence[Tuple[AggregateSpec, Optional[str]]],
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
    ) -> List[AggregateResult]:
        """Run many ``(spec, where)`` aggregates in one scatter.

        Each replica folds all the aggregate plans over one block open;
        shards ship one list of compact partials per RPC, merged per
        plan on the coordinator thread after the fan-out drains.
        """
        specs = list(specs)
        if not specs:
            return []
        start = time.perf_counter()
        plans = [
            build_aggregate_plan(
                spec, where, ignore_case=ignore_case,
                from_time=from_time, to_time=to_time,
            )
            for spec, where in specs
        ]
        for spec, _ in specs:
            _CLUSTER_AGG_QUERIES.inc(kind=spec.kind.value)
        outcomes = self._scatter(
            self._shard_tasks(),
            lambda nid, task: self.nodes[nid].query_block_batch(
                task.name, plans
            ),
            kind="partial",
        )
        report = ClusterQueryReport(
            "; ".join(where or "<all>" for _, where in specs),
            OutputMode.AGGREGATE.value,
        )
        report.add("partial", outcomes)
        elapsed = time.perf_counter() - start
        results: List[AggregateResult] = []
        for pos, (spec, _where) in enumerate(specs):
            stats = QueryStats()
            merged = make_partial(spec)
            matched = 0
            for outcome in outcomes:
                payload, count, plan_stats = outcome.payload[pos]
                stats.merge(plan_stats)
                matched += count
                if payload is not None:
                    merged.merge(payload)
                    _CLUSTER_AGG_PARTIALS.inc()
            stats.entries_matched = matched
            stats.publish(elapsed)
            results.append(
                AggregateResult(merged.finalize(spec), matched, stats, elapsed)
            )
        report.elapsed_ms = elapsed * 1000.0
        self.last_report = report
        return results

    def _fetch_entries(
        self,
        plan: QueryPlan,
        outcomes: Sequence[ShardOutcome],
        limit: Optional[int],
        stats: QueryStats,
        report: ClusterQueryReport,
    ) -> List[Entry]:
        """The bounded fetch: reconstruct only kept blocks/rows.

        Blocks partition the line-id space in name order, so a ``limit``
        is covered by the minimal prefix of matching blocks whose
        cumulative counts reach it.
        """
        hit = [o for o in outcomes if o.payload]
        if limit is not None:
            kept: List[ShardOutcome] = []
            covered = 0
            for outcome in hit:  # outcomes arrive in block-name order
                kept.append(outcome)
                covered += outcome.count
                if covered >= limit:
                    break
            hit = kept
        if not hit:
            return []
        tasks = []
        for outcome in hit:
            # Prefer the replica that served the locate: its box (and the
            # hit groups' capsules) are warm.
            replicas = [outcome.node_id] + [
                nid
                for nid in self._placement[outcome.name]
                if nid != outcome.node_id
            ]
            tasks.append(ShardTask(outcome.name, replicas, outcome.payload))
        fetched = self._scatter(
            tasks,
            lambda nid, task: self.nodes[nid].reconstruct_rows(
                task.name, task.request  # type: ignore[arg-type]
            ),
            kind="lines",
        )
        report.add("lines", fetched)
        entries: List[Entry] = []
        for outcome in fetched:
            stats.merge(outcome.stats)
            entries.extend(outcome.payload)  # type: ignore[arg-type]
        entries.sort(key=lambda item: item[0])
        if limit is not None:
            entries = entries[:limit]
        return entries

    def count(
        self,
        command: str,
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
    ) -> int:
        """Distributed count: the same plan with reconstruction elided;
        shards ship a single integer each."""
        start = time.perf_counter()
        plan = build_plan(
            command, OutputMode.COUNT, ignore_case,
            from_time=from_time, to_time=to_time,
        )
        _CLUSTER_QUERIES.inc(mode=plan.mode.value)
        outcomes = self._scatter(
            self._shard_tasks(),
            lambda nid, task: self.nodes[nid].query_block(task.name, plan),
            kind="count",
        )
        report = ClusterQueryReport(command, plan.mode.value)
        report.add("count", outcomes)
        report.elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.last_report = report
        return sum(outcome.count for outcome in outcomes)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def aggregate(
        self,
        spec: AggregateSpec,
        where: Optional[str] = None,
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
        analyze: bool = False,
    ) -> AggregateResult:
        """Distributed aggregate: one plan shipped, partials merged.

        The aggregate plan is built once and scattered like ``grep``;
        each serving replica runs the Aggregate operator over its block
        and returns a compact partial instead of reconstructed lines.
        Partial merging is commutative (Counter addition / multiset
        union), and the fold happens on the coordinator thread after the
        fan-out drains, so the delivery schedule never changes the
        result — the merged value is identical to a single-node run over
        the same lines.
        """
        tracer = get_tracer()
        start = time.perf_counter()
        plan = build_aggregate_plan(
            spec, where, ignore_case=ignore_case,
            from_time=from_time, to_time=to_time,
        )
        stats = QueryStats()
        merged = make_partial(spec)
        matched = 0
        _CLUSTER_AGG_QUERIES.inc(kind=spec.kind.value)
        report = ClusterQueryReport(where or "<all>", plan.mode.value)
        with tracer.span(
            "cluster.aggregate", kind=spec.kind.value, where=where or ""
        ) as qspan:
            def fold(nid: str, task: ShardTask):
                with tracer.span(
                    "cluster.aggregate_block",
                    parent=qspan,
                    block=task.name,
                    node=nid,
                ):
                    return self.nodes[nid].aggregate_block(task.name, plan)

            outcomes = self._scatter(self._shard_tasks(), fold, kind="partial")
            report.add("partial", outcomes)
            for outcome in outcomes:
                stats.merge(outcome.stats)
                matched += outcome.count
                if outcome.payload is not None:
                    merged.merge(outcome.payload)
                    _CLUSTER_AGG_PARTIALS.inc()
            stats.entries_matched = matched
            qspan.set("blocks", len(outcomes))
            qspan.set("entries_matched", matched)
        elapsed = time.perf_counter() - start
        report.elapsed_ms = elapsed * 1000.0
        self.last_report = report
        stats.publish(elapsed)
        return AggregateResult(
            merged.finalize(spec),
            matched,
            stats,
            elapsed,
            report=report.render() if analyze else "",
        )

    def count_by(
        self, field: str, where: Optional[str] = None
    ) -> "Counter[str]":
        """Distributed ``GROUP BY field COUNT(*)`` from index cells."""
        spec = AggregateSpec(AggregateKind.COUNT_BY, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def top_k(
        self, field: str, k: int = 10, where: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        spec = AggregateSpec(AggregateKind.TOP_K, field, k=k)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def stats_of(self, field: str, where: Optional[str] = None) -> NumericStats:
        spec = AggregateSpec(AggregateKind.STATS, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def timeseries(
        self, where: Optional[str] = None, buckets: int = 20
    ) -> List[Bucket]:
        """Hit counts over logical time, merged across the cluster.

        The coordinator assigned every global line id at ingest, so its
        ``_next_line_id`` is the archive's logical-clock extent.
        """
        total = self._next_line_id
        if total == 0 or buckets <= 0:
            return []
        spec = LogGrep._timeseries_spec(total, buckets)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(
        self, node_id: Optional[str] = None, rebalance: bool = True
    ) -> str:
        """Join a fresh node; by default rebalancing moves it its share
        of replicas (rendezvous hashing only relocates blocks that now
        score the new node highest)."""
        if node_id is None:
            i = len(self.nodes)
            while f"node-{i}" in self.nodes:
                i += 1
            node_id = f"node-{i}"
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already exists")
        self._create_node(node_id)
        if rebalance:
            self.rebalance()
        return node_id

    def remove_node(self, node_id: str) -> int:
        """Decommission a node: drain its replicas to the survivors, drop
        it from membership.  Returns the replica copies created.

        The node may be dead — any surviving holder serves as the copy
        source; a block whose only copies sat on the leaving node (and on
        dead peers) raises :class:`ClusterError` before anything is
        dropped.
        """
        if node_id not in self.nodes:
            raise KeyError(f"no node {node_id}")
        survivors = [nid for nid in self._alive_ids() if nid != node_id]
        if len(survivors) < self.replication:
            raise ValueError(
                "removing the node would drop below the replication factor"
            )
        leaving = self.nodes[node_id]
        planned: Dict[str, List[str]] = {}
        sources: Dict[str, str] = {}
        for name in sorted(self._placement):
            desired = replica_nodes(name, survivors, self.replication)
            holders = [
                nid
                for nid in self._placement[name]
                if nid != node_id
                and self.nodes[nid].alive
                and self.nodes[nid].has_block(name)
            ]
            source = holders[0] if holders else (
                node_id
                if leaving.alive and leaving.has_block(name)
                else None
            )
            if source is None and any(
                target not in holders for target in desired
            ):
                raise ClusterError(
                    f"block {name} would become unreachable removing {node_id}"
                )
            planned[name] = desired
            if source is not None:
                sources[name] = source
        created = 0
        for name, desired in planned.items():
            for target in desired:
                if not self.nodes[target].has_block(name):
                    data, summary = self.nodes[sources[name]].fetch_block(name)
                    self.nodes[target].store_replica(name, data, summary)
                    created += 1
                    _CLUSTER_REBALANCE_MOVES.inc()
            self._placement[name] = desired
        del self.nodes[node_id]
        logger.info(
            "removed %s: %d replica copies drained", node_id, created
        )
        return created

    def rebalance(self) -> int:
        """Recompute rendezvous placement over the current alive
        membership and move replicas to match.  Returns copies + drops.

        Blocks with no reachable holder are left alone (their placement
        entry survives so a recovered holder restores service).
        """
        moves = 0
        alive = self._alive_ids()
        for name in sorted(self._placement):
            desired = replica_nodes(name, alive, self.replication)
            holders = [
                nid
                for nid, node in self.nodes.items()
                if node.alive and node.has_block(name)
            ]
            if not holders:
                continue  # unreachable until a holder recovers
            data: Optional[bytes] = None
            summary: Optional[BlockSummary] = None
            for target in desired:
                if target in holders:
                    continue
                if data is None:
                    data, summary = self.nodes[holders[0]].fetch_block(name)
                self.nodes[target].store_replica(name, data, summary)
                moves += 1
                _CLUSTER_REBALANCE_MOVES.inc()
            for holder in holders:
                if holder not in desired:
                    self.nodes[holder].drop_block(name)
                    moves += 1
                    _CLUSTER_REBALANCE_MOVES.inc()
            self._placement[name] = desired
        if moves:
            logger.info("rebalance moved %d replica copies", moves)
        return moves

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Re-replicate under-replicated blocks onto alive nodes.

        Returns the number of replica copies created.  Run after a node is
        declared permanently lost.
        """
        created = 0
        alive = self._alive_ids()
        for name, replicas in self._placement.items():
            holders = [
                nid
                for nid in replicas
                if self.nodes[nid].alive and self.nodes[nid].has_block(name)
            ]
            if not holders:
                continue  # data unreachable until a holder recovers
            missing = self.replication - len(holders)
            if missing <= 0:
                continue
            data, summary = self.nodes[holders[0]].fetch_block(name)
            for candidate in replica_nodes(name, alive, len(alive)):
                if missing == 0:
                    break
                if candidate in holders:
                    continue
                self.nodes[candidate].store_replica(name, data, summary)
                holders.append(candidate)
                created += 1
                missing -= 1
            self._placement[name] = holders
        if created:
            logger.info("repair created %d replica copies", created)
        return created

    def stats(self) -> ClusterStats:
        return ClusterStats(
            nodes=len(self.nodes),
            alive_nodes=len(self._alive_ids()),
            blocks=len(self._placement),
            replication=self.replication,
            blocks_per_node={
                nid: len(node.block_names()) for nid, node in self.nodes.items()
            },
            bytes_per_node={
                nid: node.storage_bytes() for nid, node in self.nodes.items()
            },
        )

    def storage_bytes(self) -> int:
        """Total bytes across all replicas (what a cluster actually pays)."""
        return sum(node.storage_bytes() for node in self.nodes.values())

    def close(self) -> None:
        self._engine.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterLogGrep":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
