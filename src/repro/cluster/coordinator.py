"""The cluster coordinator: distributed compress and scatter/gather query.

``ClusterLogGrep`` is the distributed analogue of
:class:`~repro.core.loggrep.LogGrep` (the paper's §8 future work):

* **ingest** — raw lines are split into blocks; each block's *primary*
  node (rendezvous hashing) compresses it locally and the coordinator fans
  the archive out to the remaining replicas.  Blocks compress in parallel
  across nodes (LZMA releases the GIL, so a thread pool gives real
  speedup).
* **query** — the command is executed per block on one alive replica
  (primary preferred), in parallel; the coordinator merges the per-block
  entries by global line id, restoring exactly the single-node result.
* **failures** — a dead node is skipped in favor of the next replica; a
  query only fails if *every* replica of some block is down.  Recovered
  nodes keep their data (disks survive crashes).
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..blockstore.block import split_lines
from ..common.errors import ReproError
from ..core.config import LogGrepConfig
from ..core.loggrep import AggregateResult, GrepResult, LogGrep
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..query.aggregate import AggregateSpec, Bucket, NumericStats, make_partial
from ..query.modes import AggregateKind
from ..query.plan import OutputMode, build_aggregate_plan, build_plan
from ..query.stats import QueryStats
from .node import NodeDownError, WorkerNode
from .placement import replica_nodes

logger = logging.getLogger(__name__)

_CLUSTER_AGG_QUERIES = get_registry().counter(
    "loggrep_cluster_agg_queries_total",
    "Aggregate queries scattered by the coordinator",
)
_CLUSTER_AGG_PARTIALS = get_registry().counter(
    "loggrep_agg_partials_merged_total",
    "Per-block aggregate partials folded into a merged result",
)


class ClusterError(ReproError):
    """The cluster cannot satisfy a request (e.g. all replicas down)."""


@dataclass
class ClusterStats:
    """A snapshot of cluster health and balance."""

    nodes: int
    alive_nodes: int
    blocks: int
    replication: int
    blocks_per_node: Dict[str, int] = field(default_factory=dict)
    bytes_per_node: Dict[str, int] = field(default_factory=dict)


class ClusterLogGrep:
    """A small LogGrep cluster with replicated block placement."""

    def __init__(
        self,
        num_nodes: int = 4,
        replication: int = 2,
        config: Optional[LogGrepConfig] = None,
        parallelism: Optional[int] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        if replication > num_nodes:
            raise ValueError("replication factor cannot exceed the node count")
        self.config = config or LogGrepConfig()
        self.replication = replication
        self.nodes: Dict[str, WorkerNode] = {
            f"node-{i}": WorkerNode(f"node-{i}", self.config)
            for i in range(num_nodes)
        }
        self._placement: Dict[str, List[str]] = {}  # block name → replica ids
        self._next_block_id = 0
        self._next_line_id = 0
        self.raw_bytes = 0
        self._pool = ThreadPoolExecutor(
            max_workers=parallelism or max(2, num_nodes)
        )

    # ------------------------------------------------------------------
    def node(self, node_id: str) -> WorkerNode:
        return self.nodes[node_id]

    def _alive_ids(self) -> List[str]:
        return [nid for nid, node in self.nodes.items() if node.alive]

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def compress(self, lines: Sequence[str]) -> None:
        """Distribute and compress *lines* across the cluster."""
        blocks = []
        for block in split_lines(lines, self.config.block_bytes):
            block.block_id = self._next_block_id
            block.first_line_id = self._next_line_id
            self._next_block_id += 1
            self._next_line_id += block.num_lines
            self.raw_bytes += block.raw_bytes
            blocks.append(block)

        tracer = get_tracer()
        with tracer.span("cluster.compress", blocks=len(blocks)) as cspan:
            def ingest_one(block) -> None:
                name = f"block-{block.block_id:08d}.lgcb"
                replicas = replica_nodes(name, self._alive_ids(), self.replication)
                if not replicas:
                    raise ClusterError("no alive node to ingest into")
                with tracer.span(
                    "cluster.ingest_block",
                    parent=cspan,
                    block=name,
                    node=replicas[0],
                ) as ispan:
                    primary = self.nodes[replicas[0]]
                    name, data = primary.compress_and_store(block)
                    for replica_id in replicas[1:]:
                        self.nodes[replica_id].store_replica(name, data)
                    self._placement[name] = replicas
                    ispan.set("replicas", len(replicas))

            list(self._pool.map(ingest_one, blocks))

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def grep(self, command: str, ignore_case: bool = False) -> GrepResult:
        """Scatter one pre-built plan to an alive replica per block, gather,
        merge.

        The command is parsed and planned exactly once; every node receives
        the same :class:`~repro.query.plan.QueryPlan` instead of re-parsing
        the raw string per block.
        """
        import time

        tracer = get_tracer()
        start = time.perf_counter()
        stats = QueryStats()
        all_entries: List[Tuple[int, str]] = []
        with tracer.span("cluster.query", command=command) as qspan:
            with tracer.span("plan"):
                plan = build_plan(command, OutputMode.LINES, ignore_case)

            with tracer.span("cluster.fan_out") as fan:
                def query_one(name: str) -> List[Tuple[int, str]]:
                    with tracer.span(
                        "cluster.query_block", parent=fan, block=name
                    ) as bspan:
                        def run(node):
                            bspan.set("node", node.node_id)
                            return node.query_block(name, plan)

                        entries, _, block_stats = self._on_replica(name, run)
                        bspan.set("entries", len(entries))
                    stats.merge(block_stats)
                    return entries

                for entries in self._pool.map(query_one, sorted(self._placement)):
                    all_entries.extend(entries)

            with tracer.span("cluster.merge"):
                all_entries.sort(key=lambda item: item[0])
            stats.entries_matched = len(all_entries)
            qspan.set("blocks", len(self._placement))
            qspan.set("entries_matched", stats.entries_matched)
        elapsed = time.perf_counter() - start
        stats.publish(elapsed)
        return GrepResult(
            [text for _, text in all_entries],
            [line_id for line_id, _ in all_entries],
            stats,
            elapsed,
        )

    def count(self, command: str, ignore_case: bool = False) -> int:
        """Distributed count: the same plan with reconstruction elided."""
        plan = build_plan(command, OutputMode.COUNT, ignore_case)

        def count_one(name: str) -> int:
            _, hit_count, _ = self._on_replica(
                name, lambda node: node.query_block(name, plan)
            )
            return hit_count

        return sum(self._pool.map(count_one, sorted(self._placement)))

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def aggregate(
        self,
        spec: AggregateSpec,
        where: Optional[str] = None,
        ignore_case: bool = False,
    ) -> AggregateResult:
        """Distributed aggregate: one plan shipped, partials merged.

        The aggregate plan is built once and scattered like ``grep``; each
        alive replica runs the Aggregate operator over its block and
        returns a compact partial instead of reconstructed lines.  Partial
        merging is commutative (Counter addition / multiset union), so the
        thread pool's completion order never changes the result — the
        merged value is identical to a single-node run over the same
        lines.
        """
        tracer = get_tracer()
        start = time.perf_counter()
        plan = build_aggregate_plan(spec, where, ignore_case=ignore_case)
        stats = QueryStats()
        merged = make_partial(spec)
        matched = 0
        _CLUSTER_AGG_QUERIES.inc(kind=spec.kind.value)
        with tracer.span(
            "cluster.aggregate", kind=spec.kind.value, where=where or ""
        ) as qspan:
            def agg_one(name: str):
                with tracer.span(
                    "cluster.aggregate_block", parent=qspan, block=name
                ) as bspan:
                    def run(node: WorkerNode):
                        bspan.set("node", node.node_id)
                        return node.aggregate_block(name, plan)

                    return self._on_replica(name, run)

            for partial, count, block_stats in self._pool.map(
                agg_one, sorted(self._placement)
            ):
                stats.merge(block_stats)
                matched += count
                if partial is not None:
                    merged.merge(partial)
                    _CLUSTER_AGG_PARTIALS.inc()
            stats.entries_matched = matched
            qspan.set("blocks", len(self._placement))
            qspan.set("entries_matched", matched)
        elapsed = time.perf_counter() - start
        stats.publish(elapsed)
        return AggregateResult(merged.finalize(spec), matched, stats, elapsed)

    def count_by(
        self, field: str, where: Optional[str] = None
    ) -> "Counter[str]":
        """Distributed ``GROUP BY field COUNT(*)`` from index cells."""
        spec = AggregateSpec(AggregateKind.COUNT_BY, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def top_k(
        self, field: str, k: int = 10, where: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        spec = AggregateSpec(AggregateKind.TOP_K, field, k=k)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def stats_of(self, field: str, where: Optional[str] = None) -> NumericStats:
        spec = AggregateSpec(AggregateKind.STATS, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def timeseries(
        self, where: Optional[str] = None, buckets: int = 20
    ) -> List[Bucket]:
        """Hit counts over logical time, merged across the cluster.

        The coordinator assigned every global line id at ingest, so its
        ``_next_line_id`` is the archive's logical-clock extent.
        """
        total = self._next_line_id
        if total == 0 or buckets <= 0:
            return []
        spec = LogGrep._timeseries_spec(total, buckets)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def _on_replica(self, name: str, action):
        """Run *action* on the first alive replica of a block."""
        last_error: Optional[Exception] = None
        for replica_id in self._placement[name]:
            node = self.nodes[replica_id]
            if not node.alive:
                continue
            try:
                return action(node)
            except NodeDownError as exc:  # raced with a failure
                last_error = exc
        logger.warning("all replicas of %s are down: %s", name, self._placement[name])
        raise ClusterError(
            f"all replicas of {name} are down ({self._placement[name]})"
        ) from last_error

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Re-replicate under-replicated blocks onto alive nodes.

        Returns the number of replica copies created.  Run after a node is
        declared permanently lost.
        """
        created = 0
        alive = self._alive_ids()
        for name, replicas in self._placement.items():
            holders = [
                nid
                for nid in replicas
                if self.nodes[nid].alive and self.nodes[nid].has_block(name)
            ]
            if not holders:
                continue  # data unreachable until a holder recovers
            missing = self.replication - len(holders)
            if missing <= 0:
                continue
            data = self.nodes[holders[0]].store.get(name)
            for candidate in replica_nodes(name, alive, len(alive)):
                if missing == 0:
                    break
                if candidate in holders:
                    continue
                self.nodes[candidate].store_replica(name, data)
                holders.append(candidate)
                created += 1
                missing -= 1
            self._placement[name] = holders
        if created:
            logger.info("repair created %d replica copies", created)
        return created

    def stats(self) -> ClusterStats:
        return ClusterStats(
            nodes=len(self.nodes),
            alive_nodes=len(self._alive_ids()),
            blocks=len(self._placement),
            replication=self.replication,
            blocks_per_node={
                nid: len(node.block_names()) for nid, node in self.nodes.items()
            },
            bytes_per_node={
                nid: node.storage_bytes() for nid, node in self.nodes.items()
            },
        )

    def storage_bytes(self) -> int:
        """Total bytes across all replicas (what a cluster actually pays)."""
        return sum(node.storage_bytes() for node in self.nodes.values())

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterLogGrep":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
