"""The fan-out scheduler: bounded concurrency, deadlines, retries, hedges.

One query scatters one *shard task* per block.  Each task runs a small
state machine on the coordinator:

* launch the first attempt on the block's preferred replica;
* if the attempt has not returned after an adaptive **hedge delay** (a
  high percentile of recently observed shard latencies), launch a
  speculative second attempt on the next replica and take whichever
  returns first — the classic tail-at-scale straggler mitigation;
* an attempt that exceeds the per-shard **deadline** is abandoned (its
  thread keeps running; its result is discarded) and counts as a timeout;
* a failed or timed-out attempt is **retried with exponential backoff**
  on the next replica, round-robin, until ``max_attempts`` is spent —
  only then does the shard (and the query) fail.

Shard tasks themselves run on a bounded fan-out pool, so a thousand-block
archive never launches a thousand concurrent RPCs.  Results carry
per-shard accounting (attempts, retries, hedge outcome, wire bytes) that
the coordinator rolls into its ANALYZE report.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..blockstore.remote import RemoteStoreError
from ..common.errors import ReproError
from ..obs.metrics import get_registry
from ..query.stats import QueryStats
from .node import NodeDownError

_HEDGE_LAUNCHED = get_registry().counter(
    "loggrep_cluster_hedge_launched_total",
    "Speculative (hedged) replica reads launched",
)
_HEDGE_WINS = get_registry().counter(
    "loggrep_cluster_hedge_wins_total",
    "Shards where the hedged attempt returned first",
)
_HEDGE_LOSSES = get_registry().counter(
    "loggrep_cluster_hedge_losses_total",
    "Shards where the original attempt beat its hedge",
)
_RETRIES = get_registry().counter(
    "loggrep_cluster_retry_attempts_total",
    "Shard attempts retried on another replica, by reason",
)
_TIMEOUTS = get_registry().counter(
    "loggrep_cluster_shard_timeouts_total",
    "Shard attempts abandoned at the per-shard deadline",
)
_GATHER_BYTES = get_registry().counter(
    "loggrep_cluster_gather_bytes_total",
    "Serialized bytes gathered from shards, by payload kind",
)
_SHARD_SECONDS = get_registry().histogram(
    "loggrep_cluster_shard_seconds",
    "End-to-end shard latency (including retries and hedges)",
)

#: What a node RPC returns: (payload, matched count, per-block stats).
ShardResponse = Tuple[object, int, QueryStats]

#: Exceptions that mean "this replica, this time" — retryable on another.
RETRYABLE = (NodeDownError, RemoteStoreError)


class ShardError(ReproError):
    """One shard exhausted its replicas/attempt budget."""

    def __init__(self, name: str, detail: str):
        super().__init__(f"shard {name}: {detail}")
        self.name = name


@dataclass
class ScatterConfig:
    """Tuning of the fan-out scheduler (all times in seconds)."""

    #: Shard tasks running concurrently (bounded fan-out).
    fanout_concurrency: int = 8
    #: Abandon an attempt after this long; None disables deadlines.
    shard_deadline_s: Optional[float] = 10.0
    #: Total attempt budget per shard (first try + retries + hedge).
    max_attempts: int = 4
    #: First retry backoff; doubles per retry.
    retry_backoff_s: float = 0.002
    #: Launch a speculative replica read when the first attempt outlives
    #: the observed latency percentile.
    hedge: bool = True
    hedge_percentile: float = 0.95
    #: Clamp on the adaptive hedge delay (and the cold-start default).
    hedge_min_s: float = 0.010
    hedge_max_s: float = 2.0
    #: Observations needed before the percentile is trusted.
    hedge_min_samples: int = 8


class LatencyTracker:
    """A bounded window of shard latencies with quantile lookup.

    Shared across queries so hedging warms up once per cluster, and
    thread-safe because every shard task observes into it concurrently.
    """

    def __init__(self, window: int = 512):
        self._samples: Deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> Optional[float]:
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def hedge_delay(self, config: ScatterConfig) -> float:
        """How long to give the first attempt before hedging."""
        if len(self) < config.hedge_min_samples:
            return config.hedge_min_s
        value = self.quantile(config.hedge_percentile)
        if value is None:
            return config.hedge_min_s
        return min(max(value, config.hedge_min_s), config.hedge_max_s)


@dataclass
class ShardTask:
    """One block's unit of scatter work."""

    name: str
    replicas: List[str]
    request: object = None


@dataclass
class ShardOutcome:
    """One shard's gathered result plus its delivery accounting."""

    name: str
    node_id: str
    payload: object
    count: int
    stats: QueryStats
    attempts: int = 1
    retries: int = 0
    timeouts: int = 0
    hedged: bool = False
    hedge_won: bool = False
    elapsed: float = 0.0
    wire_bytes: int = 0


@dataclass
class _Attempt:
    node_id: str
    started: float
    hedged: bool


def wire_size(response: ShardResponse) -> int:
    """Serialized size of one shard response — what a real network gather
    would put on the wire (the simulated RPCs pass objects in-process, so
    transfer bytes are measured, not paid)."""
    return len(pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL))


class ScatterGather:
    """Runs shard tasks against replicas with deadlines, retries, hedges."""

    def __init__(
        self,
        config: ScatterConfig,
        latency: Optional[LatencyTracker] = None,
        alive: Optional[Callable[[str], bool]] = None,
    ):
        self.config = config
        self.latency = latency if latency is not None else LatencyTracker()
        self._alive = alive if alive is not None else (lambda _nid: True)
        self._fanout = ThreadPoolExecutor(
            max_workers=max(1, config.fanout_concurrency),
            thread_name_prefix="scatter-fanout",
        )
        # Attempts outnumber shards transiently: a hedge plus abandoned
        # stragglers still draining their simulated I/O.  Size the pool so
        # zombies do not starve fresh attempts at test/bench scale.
        self._attempts = ThreadPoolExecutor(
            max_workers=max(2, config.fanout_concurrency * 4),
            thread_name_prefix="scatter-attempt",
        )

    def close(self) -> None:
        self._fanout.shutdown(wait=True)
        self._attempts.shutdown(wait=True)

    # ------------------------------------------------------------------
    def map(
        self,
        tasks: Sequence[ShardTask],
        action: Callable[[str, ShardTask], ShardResponse],
        kind: str,
    ) -> List[ShardOutcome]:
        """Run every task (bounded concurrency); outcomes in task order.

        Raises the first :class:`ShardError` once encountered — partial
        results are dropped, matching the all-or-nothing semantics of a
        gather.
        """
        futures = [
            self._fanout.submit(self._run_shard, task, action, kind)
            for task in tasks
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def _run_shard(
        self,
        task: ShardTask,
        action: Callable[[str, ShardTask], ShardResponse],
        kind: str,
    ) -> ShardOutcome:
        config = self.config
        start = time.perf_counter()
        candidates = [nid for nid in task.replicas if self._alive(nid)]
        if not candidates:
            raise ShardError(
                task.name, f"all replicas down ({task.replicas})"
            )
        inflight: Dict["Future[ShardResponse]", _Attempt] = {}
        attempts = retries = timeouts = 0
        hedged = False
        backoff = config.retry_backoff_s
        next_replica = 0
        last_error: Optional[Exception] = None

        def launch(is_hedge: bool) -> None:
            nonlocal attempts, next_replica
            node_id = candidates[next_replica % len(candidates)]
            next_replica += 1
            attempts += 1
            future = self._attempts.submit(action, node_id, task)
            inflight[future] = _Attempt(node_id, time.perf_counter(), is_hedge)

        launch(is_hedge=False)
        while True:
            now = time.perf_counter()
            sole = (
                next(iter(inflight.values()))
                if len(inflight) == 1
                else None
            )
            can_hedge = (
                config.hedge
                and not hedged
                and sole is not None
                and not sole.hedged
                and attempts < config.max_attempts
                and len(candidates) > 1
            )
            wake: Optional[float] = None
            if can_hedge:
                assert sole is not None
                wake = sole.started + self.latency.hedge_delay(config)
            if config.shard_deadline_s is not None and inflight:
                deadline = min(
                    attempt.started + config.shard_deadline_s
                    for attempt in inflight.values()
                )
                wake = deadline if wake is None else min(wake, deadline)
            timeout = None if wake is None else max(0.0, wake - now)
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = time.perf_counter()
            for future in done:
                attempt = inflight.pop(future)
                try:
                    payload, count, stats = future.result()
                except RETRYABLE as exc:
                    last_error = exc
                    retries += 1
                    _RETRIES.inc(reason="failure")
                    continue
                # Winner: everything still inflight is abandoned (results
                # discarded — attempts are idempotent reads).
                elapsed = now - start
                self.latency.observe(now - attempt.started)
                _SHARD_SECONDS.observe(elapsed)
                if attempt.hedged:
                    _HEDGE_WINS.inc()
                elif hedged:
                    _HEDGE_LOSSES.inc()
                bytes_on_wire = wire_size((payload, count, stats))
                _GATHER_BYTES.inc(bytes_on_wire, kind=kind)
                return ShardOutcome(
                    task.name,
                    attempt.node_id,
                    payload,
                    count,
                    stats,
                    attempts=attempts,
                    retries=retries,
                    timeouts=timeouts,
                    hedged=hedged,
                    hedge_won=attempt.hedged,
                    elapsed=elapsed,
                    wire_bytes=bytes_on_wire,
                )
            if config.shard_deadline_s is not None:
                for future, attempt in list(inflight.items()):
                    if now - attempt.started >= config.shard_deadline_s:
                        # Threads cannot be interrupted: drop the future
                        # (cancel() only helps while still queued) and
                        # stop listening to it.
                        inflight.pop(future)
                        future.cancel()
                        timeouts += 1
                        retries += 1
                        _TIMEOUTS.inc()
                        _RETRIES.inc(reason="timeout")
            if not inflight:
                if attempts >= config.max_attempts:
                    raise ShardError(
                        task.name,
                        f"gave up after {attempts} attempt(s), "
                        f"{timeouts} timeout(s) on {candidates} "
                        f"(last error: {last_error})",
                    )
                time.sleep(backoff)
                backoff *= 2.0
                launch(is_hedge=False)
            elif (
                can_hedge
                and sole is not None
                and now >= sole.started + self.latency.hedge_delay(config)
                and next(iter(inflight.values())) is sole
            ):
                hedged = True
                _HEDGE_LAUNCHED.inc()
                launch(is_hedge=True)
