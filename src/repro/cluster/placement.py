"""Block placement: rendezvous hashing with replication.

The paper's future work (§8) is scaling LogGrep to a distributed cluster.
Blocks are the natural distribution unit — each CapsuleBox is compressed
and queried independently — so placement only has to spread blocks evenly
and keep replicas on distinct nodes.

Rendezvous (highest-random-weight) hashing gives both properties without
any central table: every (block, node) pair gets a deterministic score and
a block lives on its R highest-scoring alive nodes.  Adding or removing a
node only moves the blocks that scored it highest.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence


def _score(block_name: str, node_id: str) -> int:
    digest = hashlib.blake2b(
        f"{block_name}@{node_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def replica_nodes(
    block_name: str, node_ids: Sequence[str], replication: int
) -> List[str]:
    """The *replication* nodes that should hold *block_name*, in
    preference order (highest rendezvous score first)."""
    if replication <= 0:
        raise ValueError("replication factor must be positive")
    ranked = sorted(node_ids, key=lambda node: _score(block_name, node), reverse=True)
    return ranked[: min(replication, len(ranked))]


def primary_node(block_name: str, node_ids: Sequence[str]) -> str:
    """The preferred (first-replica) node for a block."""
    return replica_nodes(block_name, node_ids, 1)[0]
