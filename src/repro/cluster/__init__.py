"""Distributed LogGrep (the paper's §8 future work): replicated block
placement, parallel ingest and scatter/gather queries with hedged reads,
per-shard deadlines and retry-across-replicas."""

from .coordinator import (
    ClusterError,
    ClusterLogGrep,
    ClusterQueryReport,
    ClusterStats,
    ShardReport,
)
from .node import NodeDownError, WorkerNode
from .placement import primary_node, replica_nodes
from .scatter import (
    LatencyTracker,
    ScatterConfig,
    ScatterGather,
    ShardError,
    ShardOutcome,
    ShardTask,
)

__all__ = [
    "ClusterLogGrep",
    "ClusterStats",
    "ClusterError",
    "ClusterQueryReport",
    "ShardReport",
    "WorkerNode",
    "NodeDownError",
    "replica_nodes",
    "primary_node",
    "ScatterConfig",
    "ScatterGather",
    "ShardTask",
    "ShardOutcome",
    "ShardError",
    "LatencyTracker",
]
