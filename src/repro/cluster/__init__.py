"""Distributed LogGrep (the paper's §8 future work): replicated block
placement, parallel ingest and scatter/gather queries."""

from .coordinator import ClusterError, ClusterLogGrep, ClusterStats
from .node import NodeDownError, WorkerNode
from .placement import primary_node, replica_nodes

__all__ = [
    "ClusterLogGrep",
    "ClusterStats",
    "ClusterError",
    "WorkerNode",
    "NodeDownError",
    "replica_nodes",
    "primary_node",
]
