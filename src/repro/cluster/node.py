"""Worker nodes: per-node block storage and query execution.

A worker owns the CapsuleBoxes placed on it and can execute both halves of
the distributed protocol locally: compress a raw block into a CapsuleBox,
and run a parsed query command over one of its blocks (locate + optional
reconstruction).  Failure is simulated with a flag; a dead node raises
:class:`NodeDownError` on any RPC-like call, which the coordinator treats
as a signal to fail over to another replica.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..blockstore.block import LogBlock
from ..blockstore.store import MemoryStore
from ..common.errors import ReproError
from ..core.compressor import compress_block
from ..core.config import LogGrepConfig
from ..obs.metrics import get_registry
from ..query.aggregate import AggregatePartial
from ..query.executor import QueryExecutor, StoreBoxSource
from ..query.plan import QueryPlan
from ..query.stats import QueryStats

_NODE_QUERIES = get_registry().counter(
    "loggrep_cluster_node_queries_total", "Block queries served, per node"
)
_NODE_BLOCKS = get_registry().counter(
    "loggrep_cluster_node_blocks_compressed_total", "Blocks compressed, per node"
)


class NodeDownError(ReproError):
    """The addressed worker is not reachable."""


class WorkerNode:
    """One storage/query worker of a LogGrep cluster."""

    def __init__(self, node_id: str, config: Optional[LogGrepConfig] = None):
        self.node_id = node_id
        self.config = config or LogGrepConfig()
        self.store = MemoryStore()
        self.alive = True
        self.queries_served = 0
        self.blocks_compressed = 0
        # Each worker runs the same physical pipeline as a single-node
        # LogGrep over its local replica store (no query cache: cluster
        # queries are scattered, so refining locality lives coordinator-side).
        self._executor = QueryExecutor(StoreBoxSource(self.store), self.config)

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(f"node {self.node_id} is down")

    def fail(self) -> None:
        """Simulate a crash; stored data survives (disk persists)."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def compress_and_store(self, block: LogBlock) -> Tuple[str, bytes]:
        """Compress a raw block locally; returns (name, archive bytes) so
        the coordinator can fan the replica copies out."""
        self._check_alive()
        name = f"block-{block.block_id:08d}.lgcb"
        data = compress_block(block, self.config).serialize()
        self.store.put(name, data)
        self.blocks_compressed += 1
        _NODE_BLOCKS.inc(node=self.node_id)
        return name, data

    def store_replica(self, name: str, data: bytes) -> None:
        self._check_alive()
        self.store.put(name, data)

    def has_block(self, name: str) -> bool:
        return self.store.exists(name)

    def block_names(self) -> List[str]:
        return self.store.names()

    def storage_bytes(self) -> int:
        return self.store.total_bytes()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def query_block(
        self, name: str, plan: QueryPlan
    ) -> Tuple[List[Tuple[int, str]], int, QueryStats]:
        """Execute a pre-built *plan* over one local block.

        The coordinator plans the command once and ships the plan; the
        node runs the shared operator pipeline (BloomPrune → LoadBox →
        Locate → Match → Reconstruct) over its replica.  Returns
        (entries, hit count, stats); *entries* is empty for ``COUNT``
        plans, whose reconstruction is elided.
        """
        self._check_alive()
        self.queries_served += 1
        _NODE_QUERIES.inc(node=self.node_id)
        stats = QueryStats()
        outcome = self._executor.execute_block(name, plan, stats)
        return outcome.entries, outcome.count, stats

    def aggregate_block(
        self, name: str, plan: QueryPlan
    ) -> Tuple[Optional[AggregatePartial], int, QueryStats]:
        """Execute an aggregate *plan* over one local block.

        Same pipeline as :meth:`query_block` but the plan carries an
        :class:`~repro.query.aggregate.AggregateSpec`, so Reconstruct is
        replaced by the Aggregate operator and the node ships back a
        compact partial (a Counter / stats multiset / histogram) instead
        of log lines.  Partials merge commutatively coordinator-side.
        """
        self._check_alive()
        self.queries_served += 1
        _NODE_QUERIES.inc(node=self.node_id)
        stats = QueryStats()
        outcome = self._executor.execute_block(name, plan, stats)
        return outcome.partial, outcome.count, stats
