"""Worker nodes: per-node block storage and query execution.

A worker owns the CapsuleBoxes placed on it and can execute both halves of
the distributed protocol locally: compress a raw block into a CapsuleBox,
and run a shipped plan over one of its blocks.  Each node keeps its own
prune-index summaries (shipped with replicas at ingest), so Bloom *and*
time pruning cost zero reads against its store — which may be a
fault-injecting :class:`~repro.blockstore.remote.RemoteStore`.

Failure modes the coordinator must survive are all simulated here:

* a dead node (``fail()``) raises :class:`NodeDownError` on any RPC;
* a **straggler** (``rpc_latency_s``) sleeps before serving, holding its
  single service slot — hedged reads route around it;
* a remote store may inject per-request latency/failures underneath the
  executor's ranged reads.

Every RPC funnels through :meth:`_serve`, which models a one-core worker:
a per-node semaphore serializes service, so scattering over more nodes
genuinely adds capacity (the property the shard-count benchmark measures).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from ..blockstore.block import LogBlock, block_name
from ..blockstore.index import ArchiveIndex, BlockSummary
from ..blockstore.store import ArchiveStore, MemoryStore
from ..common.errors import ReproError
from ..core.compressor import compress_block
from ..core.config import LogGrepConfig
from ..obs.metrics import get_registry
from ..query.aggregate import AggregatePartial
from ..query.batch import BatchExecutor
from ..query.engine import GroupRows
from ..query.executor import Entry, QueryExecutor, StoreBoxSource
from ..query.fragcache import FragmentCache
from ..query.plan import OutputMode, QueryPlan
from ..query.stats import QueryStats

_NODE_QUERIES = get_registry().counter(
    "loggrep_cluster_node_queries_total", "Block queries served, per node"
)
_NODE_BLOCKS = get_registry().counter(
    "loggrep_cluster_node_blocks_compressed_total", "Blocks compressed, per node"
)


class NodeDownError(ReproError):
    """The addressed worker is not reachable."""


class WorkerNode:
    """One storage/query worker of a LogGrep cluster."""

    def __init__(
        self,
        node_id: str,
        config: Optional[LogGrepConfig] = None,
        store: Optional[ArchiveStore] = None,
        serve_slots: int = 1,
    ):
        self.node_id = node_id
        self.config = config or LogGrepConfig()
        self.store = store if store is not None else MemoryStore()
        self.index = ArchiveIndex()
        self.alive = True
        self.queries_served = 0
        self.blocks_compressed = 0
        #: Simulated per-RPC service latency (slept while holding a serve
        #: slot) — the straggler injection knob.
        self.rpc_latency_s = 0.0
        self._slots = threading.Semaphore(max(1, serve_slots))
        # Each worker runs the same physical pipeline as a single-node
        # LogGrep over its local replica store, pruning via its own
        # summaries (no query cache: cluster queries are scattered, so
        # refining locality lives coordinator-side).
        self._executor = QueryExecutor(
            StoreBoxSource(self.store, index=self.index), self.config
        )
        # Shared-scan service: a multi-plan RPC opens each block once for
        # every plan in the batch.  The fragment cache is node-local and
        # keyed at generation 0 — replica stores never rewrite a block
        # name in place, so the token never needs to move.
        self._batch = BatchExecutor(
            self._executor,
            FragmentCache(
                getattr(self.config, "fragment_cache_entries", None)
                or 4096
            ),
        )

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(f"node {self.node_id} is down")

    def fail(self) -> None:
        """Simulate a crash; stored data survives (disk persists)."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    @contextmanager
    def _serve(self) -> Iterator[None]:
        """One RPC's service window: liveness check, straggler latency,
        and the node's single-core service slot.

        The straggler sleep happens *before* the slot is taken — it
        models a slow network path to the node, so concurrent delayed
        RPCs overlap instead of convoying behind one another (abandoned
        attempts must not serialize the node forever)."""
        self._check_alive()
        if self.rpc_latency_s > 0.0:
            time.sleep(self.rpc_latency_s)
        with self._slots:
            self._check_alive()
            yield

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def compress_and_store(
        self, block: LogBlock
    ) -> Tuple[str, bytes, BlockSummary]:
        """Compress a raw block locally; returns (name, archive bytes,
        prune summary) so the coordinator can fan the replica copies —
        and their summaries — out."""
        with self._serve():
            name = block_name(block.block_id)
            box = compress_block(block, self.config)
            data = box.serialize()
            summary = BlockSummary.from_box(box, lines=block.lines)
            self.store.put(name, data)
            self.index.add(name, summary)
            self.blocks_compressed += 1
            _NODE_BLOCKS.inc(node=self.node_id)
            return name, data, summary

    def store_replica(
        self, name: str, data: bytes, summary: Optional[BlockSummary] = None
    ) -> None:
        with self._serve():
            self.store.put(name, data)
            if summary is not None:
                self.index.add(name, summary)

    def drop_block(self, name: str) -> None:
        """Remove a replica this node no longer owns (rebalance)."""
        with self._serve():
            if self.store.exists(name):
                self.store.delete(name)
            self.index.discard(name)

    def fetch_block(
        self, name: str
    ) -> Tuple[bytes, Optional[BlockSummary]]:
        """Read one replica back out (repair/rebalance traffic)."""
        with self._serve():
            return self.store.get(name), self.index.get(name)

    def has_block(self, name: str) -> bool:
        return self.store.exists(name)

    def block_names(self) -> List[str]:
        return self.store.names()

    def storage_bytes(self) -> int:
        return self.store.total_bytes()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def query_block(
        self, name: str, plan: QueryPlan
    ) -> Tuple[object, int, QueryStats]:
        """Execute a pre-built *plan* over one local block.

        The coordinator plans the command once and ships the plan; the
        node runs the shared operator pipeline (TimePrune → BloomPrune →
        LoadBox → Locate → Match → …) over its replica.  Returns
        (payload, hit count, stats) where the payload depends on the
        plan's mode: reconstructed entries (``LINES``), per-group row
        sets (``ROWS`` — the partial-gather protocol), or ``None``
        (``COUNT``).
        """
        with self._serve():
            self.queries_served += 1
            _NODE_QUERIES.inc(node=self.node_id)
            stats = QueryStats()
            outcome = self._executor.execute_block(name, plan, stats)
            payload: object
            if plan.mode is OutputMode.ROWS:
                payload = outcome.rows if outcome.rows is not None else {}
            elif plan.mode is OutputMode.COUNT:
                payload = None
            else:
                payload = outcome.entries
            return payload, outcome.count, stats

    def query_block_batch(
        self, name: str, plans: Sequence[QueryPlan]
    ) -> Tuple[List[Tuple[object, int, QueryStats]], int, QueryStats]:
        """Execute many pre-built plans over one local block in one RPC.

        The shared-scan pass (:class:`~repro.query.batch.BatchExecutor`)
        opens the block once, prunes each distinct term once and matches
        it once for the whole batch, so a coordinator fanning out N
        concurrent queries costs each replica one LoadBox instead of N.
        Returns (per-plan ``(payload, count, stats)`` triples aligned
        with *plans*, total hit count, shared engine stats).  Payload
        shapes follow :meth:`query_block`/:meth:`aggregate_block`:
        gathers stay rowset/partial-shaped, never raw lines.
        """
        with self._serve():
            self.queries_served += 1
            _NODE_QUERIES.inc(node=self.node_id)
            outcomes, stats, shared = self._batch.run_block(name, plans)
            per_plan: List[Tuple[object, int, QueryStats]] = []
            total = 0
            for plan, outcome, plan_stats in zip(plans, outcomes, stats):
                payload: object
                if plan.mode is OutputMode.ROWS:
                    payload = outcome.rows if outcome.rows is not None else {}
                elif plan.aggregate is not None:
                    payload = outcome.partial
                elif plan.mode is OutputMode.COUNT:
                    payload = None
                else:
                    payload = outcome.entries
                per_plan.append((payload, outcome.count, plan_stats))
                total += outcome.count
            return per_plan, total, shared

    def reconstruct_rows(
        self, name: str, rows: GroupRows
    ) -> Tuple[List[Entry], int, QueryStats]:
        """The bounded-fetch half of a ROWS query: rebuild exactly the
        rows the coordinator kept after its gather."""
        with self._serve():
            self.queries_served += 1
            _NODE_QUERIES.inc(node=self.node_id)
            stats = QueryStats()
            entries = self._executor.reconstruct_rows(name, rows, stats)
            return entries, len(entries), stats

    def aggregate_block(
        self, name: str, plan: QueryPlan
    ) -> Tuple[Optional[AggregatePartial], int, QueryStats]:
        """Execute an aggregate *plan* over one local block.

        Same pipeline as :meth:`query_block` but the plan carries an
        :class:`~repro.query.aggregate.AggregateSpec`, so Reconstruct is
        replaced by the Aggregate operator and the node ships back a
        compact partial (a Counter / stats multiset / histogram) instead
        of log lines.  Partials merge commutatively coordinator-side.
        """
        with self._serve():
            self.queries_served += 1
            _NODE_QUERIES.inc(node=self.node_id)
            stats = QueryStats()
            outcome = self._executor.execute_block(name, plan, stats)
            return outcome.partial, outcome.count, stats
