"""Variable-vector encapsulation (paper §4.2).

The Assembler turns one variable vector into Capsules according to its
kind:

* **real** vectors are decomposed by their extracted runtime pattern into
  one Capsule per sub-variable vector, plus an outlier Capsule for values
  that do not match the pattern;
* **nominal** vectors become a dictionary Capsule (unique values grouped by
  merged pattern, each region padded to its own width) and an index Capsule
  of fixed-width decimal indices;
* **plain** vectors (LogGrep-SP and the `w/o real`/`w/o nomi` ablations)
  are stored whole with a vector-level stamp — §2.2's "first attempt".

Extraction quality is a performance matter only: if a pattern covers too
few values the Assembler falls back to the trivial pattern, and individual
non-matching values always land in the outlier Capsule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..runtime.classify import DEFAULT_DUPLICATION_THRESHOLD, VectorKind, classify
from ..runtime.merge import DictPattern, NominalEncoding, extract_nominal
from ..runtime.pattern import RuntimePattern, SubVar
from ..runtime.treeexpand import TreeExpandConfig, extract_real_pattern
from .capsule import Capsule
from .stamp import CapsuleStamp

#: Encoding tags (serialized into CapsuleBoxes).
ENC_REAL = 0
ENC_NOMINAL = 1
ENC_PLAIN = 2

#: A real pattern must cover at least this fraction of the full vector,
#: otherwise the trivial pattern is used instead (outliers stay rare).
MIN_PATTERN_COVERAGE = 0.5


@dataclass
class EncodingOptions:
    """Assembler knobs, including the §6.3 ablation switches."""

    use_real_patterns: bool = True
    use_nominal_patterns: bool = True
    use_padding: bool = True
    duplication_threshold: float = DEFAULT_DUPLICATION_THRESHOLD
    sample_rate: float = 0.05
    preset: int = 1
    seed: int = 0
    #: Speed-tier codec choice (zlib when LZMA's ratio edge is small);
    #: off by default so archives stay byte-identical to earlier versions.
    codec_speed_tier: bool = False
    #: Emit permissive stamps instead of scanning every value's character
    #: classes.  Permissive stamps admit everything, so they can never
    #: cause a wrong skip — they only forgo stamp pruning.  Used by the
    #: hot tail, whose tiny always-scanned block gains nothing from
    #: stamps but pays their cost on the append→queryable latency path.
    cheap_stamps: bool = False


@dataclass
class RealEncodedVector:
    """A real variable vector stored as sub-variable + outlier Capsules."""

    pattern: RuntimePattern
    subvar_capsules: List[Capsule]
    outlier_capsule: Optional[Capsule]
    outlier_rows: List[int]  # group rows stored in the outlier Capsule (sorted)
    num_rows: int

    tag: int = field(default=ENC_REAL, init=False)

    @property
    def has_outliers(self) -> bool:
        return bool(self.outlier_rows)


@dataclass
class NominalEncodedVector:
    """A nominal variable vector stored as dictionary + index Capsules."""

    dict_patterns: List[DictPattern]
    dict_capsule: Capsule
    index_capsule: Capsule
    index_width: int
    num_rows: int
    dict_size: int

    tag: int = field(default=ENC_NOMINAL, init=False)

    def region_start_slot(self, pattern_idx: int) -> int:
        return sum(p.count for p in self.dict_patterns[:pattern_idx])

    def region_start_byte(self, pattern_idx: int) -> int:
        return sum(
            p.count * p.width for p in self.dict_patterns[:pattern_idx]
        )


@dataclass
class PlainEncodedVector:
    """A whole variable vector in a single Capsule (§2.2's first attempt)."""

    capsule: Capsule
    num_rows: int

    tag: int = field(default=ENC_PLAIN, init=False)


EncodedVector = Union[RealEncodedVector, NominalEncodedVector, PlainEncodedVector]


def encode_vector(
    values: Sequence[str],
    options: Optional[EncodingOptions] = None,
    kind: Optional[VectorKind] = None,
) -> EncodedVector:
    """Encapsulate one variable vector (§4.2).

    ``kind`` lets a caller that already classified the vector (the
    compressor does, under its ``classify`` span) skip re-classification.
    """
    options = options or EncodingOptions()
    if kind is None:
        kind = classify(values, options.duplication_threshold)
    if kind is VectorKind.REAL and options.use_real_patterns:
        return _encode_real(values, options)
    if kind is VectorKind.NOMINAL and options.use_nominal_patterns:
        return _encode_nominal(values, options)
    return encode_plain(values, options)


def encode_plain(
    values: Sequence[str], options: Optional[EncodingOptions] = None
) -> PlainEncodedVector:
    """Whole-vector encoding with a vector-level stamp."""
    options = options or EncodingOptions()
    capsule = _pack(values, options)
    return PlainEncodedVector(capsule, len(values))


def _encode_real(values: Sequence[str], options: EncodingOptions) -> RealEncodedVector:
    config = TreeExpandConfig(sample_rate=options.sample_rate, seed=options.seed)
    pattern = extract_real_pattern(values, config)

    columns: List[List[str]] = [[] for _ in range(pattern.num_subvars)]
    outlier_rows: List[int] = []
    outlier_values: List[str] = []
    for row, value in enumerate(values):
        subvalues = pattern.match(value)
        if subvalues is None:
            outlier_rows.append(row)
            outlier_values.append(value)
        else:
            for column, subvalue in zip(columns, subvalues):
                column.append(subvalue)

    if values and len(outlier_values) > MIN_PATTERN_COVERAGE * len(values):
        # The sample misled the extractor; degrade to the trivial pattern
        # rather than storing half the vector as outliers.
        pattern = RuntimePattern([SubVar(0)])
        columns = [list(values)]
        outlier_rows = []
        outlier_values = []

    subvar_capsules = [_pack(column, options) for column in columns]
    outlier_capsule = _pack(outlier_values, options) if outlier_values else None
    return RealEncodedVector(
        pattern, subvar_capsules, outlier_capsule, outlier_rows, len(values)
    )


def _encode_nominal(
    values: Sequence[str], options: EncodingOptions
) -> NominalEncodedVector:
    encoding: NominalEncoding = extract_nominal(values)
    regions: List[List[str]] = []
    widths: List[int] = []
    slot = 0
    for dict_pattern in encoding.patterns:
        regions.append(encoding.dict_values[slot : slot + dict_pattern.count])
        widths.append(dict_pattern.width)
        slot += dict_pattern.count

    speed_tier = options.codec_speed_tier
    if options.use_padding:
        dict_capsule = Capsule.pack_regions(
            regions, widths, options.preset, speed_tier=speed_tier
        )
    else:
        dict_capsule = Capsule.pack_variable(
            encoding.dict_values, options.preset, speed_tier=speed_tier
        )

    index_values = [str(i).zfill(encoding.index_width) for i in encoding.index]
    index_stamp = CapsuleStamp.of_values(index_values)
    if options.use_padding:
        index_capsule = Capsule.pack_fixed(
            index_values,
            options.preset,
            index_stamp,
            width=encoding.index_width,
            speed_tier=speed_tier,
        )
    else:
        index_capsule = Capsule.pack_variable(
            index_values, options.preset, index_stamp, speed_tier=speed_tier
        )

    return NominalEncodedVector(
        encoding.patterns,
        dict_capsule,
        index_capsule,
        encoding.index_width,
        len(values),
        len(encoding.dict_values),
    )


def _pack(values: Sequence[str], options: EncodingOptions) -> Capsule:
    stamp = CapsuleStamp.permissive() if options.cheap_stamps else None
    if options.use_padding:
        return Capsule.pack_fixed(
            values, options.preset, stamp=stamp,
            speed_tier=options.codec_speed_tier,
        )
    return Capsule.pack_variable(
        values, options.preset, stamp=stamp,
        speed_tier=options.codec_speed_tier,
    )
