"""Capsule stamps (paper §4.3).

A stamp summarizes a Capsule's values with a six-bit character-class mask
and the maximum value length.  During query execution, the Locator checks a
keyword fragment against the stamp *before* decompressing the Capsule: if
the fragment uses a character class the Capsule never contains
(``K & C != K``) or is longer than any value could be, the Capsule is
skipped entirely — the central cheap-filtering trick of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..common import chartypes
from ..common.binio import BinaryReader, BinaryWriter


@dataclass(frozen=True)
class CapsuleStamp:
    """Type mask + max length of a Capsule's values."""

    type_mask: int
    max_len: int

    @classmethod
    def of_values(cls, values: Sequence[str]) -> "CapsuleStamp":
        mask = chartypes.type_mask_of_values(values)
        max_len = max((len(v) for v in values), default=0)
        return cls(mask, max_len)

    @classmethod
    def permissive(cls) -> "CapsuleStamp":
        """A stamp that admits everything (used by the w/o-stamp ablation)."""
        return cls(chartypes.ALL_CLASSES, 1 << 30)

    def admits(self, fragment: str) -> bool:
        """Could *fragment* occur inside some value of this Capsule?

        True when every character class of the fragment appears in the
        Capsule and the fragment is no longer than the longest value.  This
        is necessary for EXACT, PREFIX, SUFFIX and SUBSTRING occurrence
        alike, so one check serves all four matching modes.
        """
        if len(fragment) > self.max_len:
            return False
        return chartypes.mask_subsumes(self.type_mask, chartypes.type_mask(fragment))

    def write(self, writer: BinaryWriter) -> None:
        writer.write_u8(self.type_mask)
        writer.write_varint(self.max_len)

    @classmethod
    def read(cls, reader: BinaryReader) -> "CapsuleStamp":
        return cls(reader.read_u8(), reader.read_varint())
