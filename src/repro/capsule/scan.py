"""Byte-level Capsule scan kernels (paper §5.2).

The paper's query-speed argument rests on one invariant: values inside a
Capsule are NUL-padded to a fixed width, so a match at byte offset ``p``
belongs to row ``p // width`` in O(1).  These kernels exploit that
invariant directly on the decompressed payload bytes — no per-row slice,
no ``rstrip``, no UTF-8 decode — the same trick CLP uses to grep
compressed segments without materializing them.

Three kernels cover the three payload layouts:

* :func:`scan_fixed` — fixed layout.  SUBSTRING hops between candidate
  offsets with ``bytes.find`` (CPython's C two-way search) and maps each
  in-cell hit to its row by alignment arithmetic; PREFIX/EXACT probe only
  stride-aligned offsets; SUFFIX checks that a hit ends exactly at the
  value's padded tail.  After a row is emitted the search resumes at the
  next cell boundary, so a dense column is still visited once per row at
  most.
* :func:`scan_regions` — region layout (dictionary Capsules).  Applies
  the fixed kernel per pattern region, with each region's start byte
  computed by the §5.2 offset formula ``Σ count_i · width_i``.
* :func:`scan_variable` — NUL-delimited layout (the ``w/o fixed``
  ablation and LogGrep-SP).  A ``memoryview`` over the payload compares
  value slices without copying; SUBSTRING still hops with ``bytes.find``
  and recovers rows by bisecting the offsets table.

:func:`check_rows_fixed` is §5.2's *direct checking*: candidate rows found
in one Capsule are probed at their exact byte ranges in another, without
any scan.

Modes are passed as the strings ``"exact" | "prefix" | "suffix" |
"substring"`` (the values of ``repro.query.modes.MatchMode``) so this
storage-layer module never imports the query layer.

Correctness note: values cannot contain NUL (the packer enforces it), so a
needle match that fits inside a cell lies entirely within the real,
unpadded value — padding bytes can never be part of a match.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from ..obs import ledger as ledger_channel
from .capsule import PAD

MODE_EXACT = "exact"
MODE_PREFIX = "prefix"
MODE_SUFFIX = "suffix"
MODE_SUBSTRING = "substring"

MODES = (MODE_EXACT, MODE_PREFIX, MODE_SUFFIX, MODE_SUBSTRING)

#: ``bytes.find`` accepts an integer needle for single bytes.
_NUL = 0


def scan_fixed(
    plain: bytes, width: int, count: int, needle: bytes, mode: str
) -> List[int]:
    """Rows of a fixed-layout payload whose value matches *needle*.

    ``plain`` is the decompressed payload (``count`` cells of ``width``
    bytes each); rows are returned in increasing order, each at most once.
    """
    return scan_region(plain, 0, width, count, needle, mode)


def scan_region(
    plain: bytes,
    base: int,
    width: int,
    count: int,
    needle: bytes,
    mode: str,
) -> List[int]:
    """:func:`scan_fixed` over the ``count · width`` bytes at *base*.

    Rows are local to the region (0-based).  This is the §5.2 direct jump:
    a dictionary region is scanned in place, no slice copied out.
    """
    if mode not in MODES:
        raise ValueError(f"unknown scan mode {mode!r}; pick one of {MODES}")
    if count == 0:
        return []
    # Charged here (not in scan_fixed/scan_regions, which delegate) so a
    # region-packed dictionary is still counted exactly once per row.
    ledger_channel.charge_rows_scanned(count)
    flen = len(needle)
    if width == 0:
        # Every value is the empty string: only the empty needle matches.
        return list(range(count)) if flen == 0 else []
    if flen > width:
        return []
    if flen == 0:
        if mode != MODE_EXACT:
            return list(range(count))  # "" occurs in every value
        return [
            row for row in range(count) if plain[base + row * width] == _NUL
        ]
    end = base + count * width
    if mode == MODE_SUBSTRING:
        return _scan_substring(plain, base, width, needle, flen, end)
    if mode == MODE_PREFIX:
        return _scan_aligned(plain, base, width, needle, end)
    if mode == MODE_EXACT:
        target = needle if flen == width else needle.ljust(width, PAD)
        return _scan_aligned(plain, base, width, target, end)
    return _scan_suffix(plain, base, width, needle, flen, end)


def _scan_substring(
    plain: bytes, base: int, width: int, needle: bytes, flen: int, end: int
) -> List[int]:
    """Hop between ``bytes.find`` hits; keep those that fit in one cell."""
    out: List[int] = []
    pos = plain.find(needle, base, end)
    while pos != -1:
        row = (pos - base) // width
        cell_end = base + (row + 1) * width
        if pos + flen <= cell_end:
            out.append(row)
            pos = plain.find(needle, cell_end, end)
        else:
            pos = plain.find(needle, pos + 1, end)
    return out


def _scan_aligned(
    plain: bytes, base: int, width: int, target: bytes, end: int
) -> List[int]:
    """Hits that start exactly at a cell boundary (PREFIX / padded EXACT).

    A misaligned hit in row *r* proves the aligned offset of row *r* was
    already passed over, so the search can resume at the next cell — the
    stride-aligned hop that keeps the scan sub-linear on sparse columns.
    """
    out: List[int] = []
    pos = plain.find(target, base, end)
    while pos != -1:
        row = (pos - base) // width
        if pos == base + row * width:
            out.append(row)
        pos = plain.find(target, base + (row + 1) * width, end)
    return out


def _scan_suffix(
    plain: bytes, base: int, width: int, needle: bytes, flen: int, end: int
) -> List[int]:
    """Hits that end exactly where the value's padding begins."""
    out: List[int] = []
    pos = plain.find(needle, base, end)
    while pos != -1:
        row = (pos - base) // width
        cell_end = base + (row + 1) * width
        hit_end = pos + flen
        if hit_end <= cell_end and (
            hit_end == cell_end or plain[hit_end] == _NUL
        ):
            # A value has exactly one suffix position; skip to the next cell.
            out.append(row)
            pos = plain.find(needle, cell_end, end)
        else:
            pos = plain.find(needle, pos + 1, end)
    return out


def check_rows_fixed(
    plain: bytes,
    width: int,
    rows: Sequence[int],
    needle: bytes,
    mode: str,
) -> List[int]:
    """§5.2 direct checking: probe only *rows*, no scan.

    Each candidate row's cell is tested in place with ``memoryview``
    slice comparisons — the padded tail is located with a bounded
    ``bytes.find`` for the first NUL rather than ``rstrip`` copies.
    """
    if mode not in MODES:
        raise ValueError(f"unknown scan mode {mode!r}; pick one of {MODES}")
    ledger_channel.charge_rows_scanned(len(rows))
    flen = len(needle)
    if width == 0:
        return list(rows) if flen == 0 else []
    if flen > width:
        return []
    view = memoryview(plain)
    out: List[int] = []
    for row in rows:
        start = row * width
        cell_end = start + width
        value_end = plain.find(_NUL, start, cell_end)
        if value_end == -1:
            value_end = cell_end
        vlen = value_end - start
        if mode == MODE_EXACT:
            hit = vlen == flen and view[start:value_end] == needle
        elif mode == MODE_PREFIX:
            hit = vlen >= flen and view[start : start + flen] == needle
        elif mode == MODE_SUFFIX:
            hit = vlen >= flen and view[value_end - flen : value_end] == needle
        else:
            hit = plain.find(needle, start, value_end) != -1 if flen else True
        if hit:
            out.append(row)
    return out


def scan_regions(
    plain: bytes,
    regions: Sequence[Tuple[int, int]],
    needle: bytes,
    mode: str,
) -> List[int]:
    """Matching slots of a region-packed dictionary payload.

    ``regions`` is the ordered ``(count, width)`` table of the dictionary's
    patterns; region *j* starts at byte ``Σ_{i<j} count_i · width_i`` and
    its slots are numbered after ``Σ_{i<j} count_i``.  Returns global slot
    indices in increasing order.
    """
    out: List[int] = []
    byte = 0
    slot = 0
    for count, width in regions:
        for local in scan_region(plain, byte, width, count, needle, mode):
            out.append(slot + local)
        byte += count * width
        slot += count
    return out


def scan_variable(
    plain: bytes,
    offsets: Sequence[int],
    count: int,
    needle: bytes,
    mode: str,
) -> List[int]:
    """Rows of a NUL-delimited payload whose value matches *needle*.

    ``offsets[i]`` is the start byte of value *i* (one past the previous
    separator); value *i* ends one byte before ``offsets[i+1]``, the last
    at ``len(plain)``.  Slice comparisons go through one shared
    ``memoryview``, so no per-row bytes objects are materialized.
    """
    if mode not in MODES:
        raise ValueError(f"unknown scan mode {mode!r}; pick one of {MODES}")
    if count == 0:
        return []
    ledger_channel.charge_rows_scanned(count)
    flen = len(needle)
    total = len(plain)

    def value_end(row: int) -> int:
        return offsets[row + 1] - 1 if row + 1 < count else total

    if flen == 0:
        if mode != MODE_EXACT:
            return list(range(count))
        return [row for row in range(count) if value_end(row) == offsets[row]]

    if mode == MODE_SUBSTRING:
        out: List[int] = []
        pos = plain.find(needle)
        while pos != -1:
            row = bisect_right(offsets, pos) - 1
            end = value_end(row)
            if pos + flen <= end:
                out.append(row)
                # Next value starts right after this one's separator.
                pos = plain.find(needle, end + 1) if end + 1 < total else -1
            else:
                pos = plain.find(needle, pos + 1)
        return out

    view = memoryview(plain)
    out = []
    for row in range(count):
        start = offsets[row]
        end = value_end(row)
        vlen = end - start
        if vlen < flen:
            continue
        if mode == MODE_EXACT:
            hit = vlen == flen and view[start:end] == needle
        elif mode == MODE_PREFIX:
            hit = view[start : start + flen] == needle
        else:  # MODE_SUFFIX
            hit = view[end - flen : end] == needle
        if hit:
            out.append(row)
    return out
