"""Capsules, stamps, the Assembler and the CapsuleBox container (§4)."""

from .assembler import (
    ENC_NOMINAL,
    ENC_PLAIN,
    ENC_REAL,
    EncodedVector,
    EncodingOptions,
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
    encode_plain,
    encode_vector,
)
from . import scan
from .box import CapsuleBox, GroupBox
from .capsule import Capsule, LAYOUT_FIXED, LAYOUT_REGION, LAYOUT_VARIABLE
from .stamp import CapsuleStamp

__all__ = [
    "scan",
    "Capsule",
    "CapsuleStamp",
    "CapsuleBox",
    "GroupBox",
    "EncodingOptions",
    "EncodedVector",
    "RealEncodedVector",
    "NominalEncodedVector",
    "PlainEncodedVector",
    "encode_vector",
    "encode_plain",
    "ENC_REAL",
    "ENC_NOMINAL",
    "ENC_PLAIN",
    "LAYOUT_FIXED",
    "LAYOUT_REGION",
    "LAYOUT_VARIABLE",
]
