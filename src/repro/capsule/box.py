"""CapsuleBox: the on-disk unit holding one compressed log block (Fig 1).

A CapsuleBox contains every Capsule of a block plus the metadata needed to
query and reconstruct it: static patterns (templates), per-group entry line
ids, runtime patterns and Capsule stamps.

Layout (format v2)::

    MAGIC "LGCB" | version u8 (=2) | flags u8 (=0) | header_len u16 (=32)
    | bloom_off u32 | bloom_len u32 | meta_off u32 | meta_len u32
    | payload_off u32 | payload_len u32
    | bloom section | zlib(meta) | payload blobs

The fixed 32-byte header is a table of contents: it records the byte
extent of every section, so a reader can fetch the Bloom filter, the
metadata, or one capsule payload with an independent ranged read —
nothing forces pulling the whole blob.  Sections are contiguous and the
header is validated strictly (flags, lengths, contiguity, total size), so
any single-byte header corruption is detected before bytes are trusted.

Format v1 (``version u8 (=1) | bloom_len u32 | meta_len u32 | …``)
remains fully readable: its 13-byte header pins the same three sections,
so v1 archives get the ranged-read path too; only the explicit
payload-length check degrades to "the rest of the blob".

Capsule payloads live *outside* the zlib'd metadata, referenced by
(offset, length) relative to the payload section.  Deserialized capsules
are **lazy**: they hold their extent plus a
:class:`~repro.blockstore.blobsource.BlobSource` and fetch bytes on first
access (or batched, via :meth:`CapsuleBox.prefetch`) — the
selective-decompression property of the paper extended down to
selective *fetching*.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterable, List, Optional

from ..blockstore.blobsource import BlobSource, BytesBlobSource, coalesce_extents
from ..common.binio import BinaryReader, BinaryWriter
from ..common.bloom import BloomFilter
from ..common.errors import FormatError
from ..runtime.merge import DictPattern
from ..runtime.pattern import RuntimePattern
from ..staticparse.template import Template
from .assembler import (
    ENC_NOMINAL,
    ENC_PLAIN,
    ENC_REAL,
    EncodedVector,
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
)
from .capsule import Capsule
from .stamp import CapsuleStamp

MAGIC = b"LGCB"
VERSION = 2
#: Versions this reader understands.
READABLE_VERSIONS = (1, 2)

#: v2 flag bit 0x01: the box references cross-archive shared content —
#: templates are stored as content ids and every capsule record carries a
#: location byte (0 = inline payload exactly as today, 1 = shared payload
#: by content id).  Reading such a box requires a
#: :class:`~repro.blockstore.shared.TemplateResolver`.
FLAG_SHARED_TEMPLATES = 0x01
_KNOWN_FLAGS = FLAG_SHARED_TEMPLATES

_V1_HEADER_LEN = 13
_V2_HEADER_LEN = 32

#: Payload extents closer than this are fetched as one ranged read: the
#: per-read fixed cost (seek / object-store request) dwarfs a few hundred
#: over-read bytes.
PREFETCH_GAP = 256


@dataclass(frozen=True)
class BoxTOC:
    """Parsed header: the byte extent of every section of a box."""

    version: int
    bloom_off: int
    bloom_len: int
    meta_off: int
    meta_len: int
    payload_off: int
    payload_len: int
    flags: int = 0

    @classmethod
    def read(cls, source: BlobSource) -> "BoxTOC":
        """Parse and strictly validate the header of *source*.

        Every field is checked against the others and against the blob
        size, so a flipped header byte raises :class:`FormatError` here —
        never a garbage slice downstream.
        """
        size = source.size()
        if size < 5:
            raise FormatError("truncated CapsuleBox header")
        head = source.read(0, min(_V1_HEADER_LEN, size))
        if head[:4] != MAGIC:
            raise FormatError("not a CapsuleBox: bad magic")
        version = head[4]
        if version not in READABLE_VERSIONS:
            raise FormatError(f"unsupported CapsuleBox version {version}")
        if version == 1:
            if size < _V1_HEADER_LEN:
                raise FormatError("truncated CapsuleBox header")
            bloom_len = int.from_bytes(head[5:9], "little")
            meta_len = int.from_bytes(head[9:13], "little")
            bloom_off = _V1_HEADER_LEN
            meta_off = bloom_off + bloom_len
            payload_off = meta_off + meta_len
            if payload_off > size:
                raise FormatError("truncated CapsuleBox metadata")
            return cls(
                1, bloom_off, bloom_len, meta_off, meta_len,
                payload_off, size - payload_off,
            )
        if size < _V2_HEADER_LEN:
            raise FormatError("truncated CapsuleBox header")
        head += source.read(_V1_HEADER_LEN, _V2_HEADER_LEN - _V1_HEADER_LEN)
        flags = head[5]
        header_len = int.from_bytes(head[6:8], "little")
        if flags & ~_KNOWN_FLAGS:
            raise FormatError(f"unknown CapsuleBox flags 0x{flags:02x}")
        if header_len != _V2_HEADER_LEN:
            raise FormatError(f"bad CapsuleBox header length {header_len}")
        bloom_off = int.from_bytes(head[8:12], "little")
        bloom_len = int.from_bytes(head[12:16], "little")
        meta_off = int.from_bytes(head[16:20], "little")
        meta_len = int.from_bytes(head[20:24], "little")
        payload_off = int.from_bytes(head[24:28], "little")
        payload_len = int.from_bytes(head[28:32], "little")
        # Sections must tile the blob exactly: contiguity pins every
        # offset to the lengths before it, and the final extent must end
        # at the end of the blob.
        if bloom_off != header_len:
            raise FormatError("CapsuleBox TOC: bloom section not contiguous")
        if meta_off != bloom_off + bloom_len:
            raise FormatError("CapsuleBox TOC: metadata section not contiguous")
        if payload_off != meta_off + meta_len:
            raise FormatError("CapsuleBox TOC: payload section not contiguous")
        if payload_off + payload_len != size:
            raise FormatError("CapsuleBox TOC: payload extent does not match blob size")
        return cls(
            2, bloom_off, bloom_len, meta_off, meta_len, payload_off,
            payload_len, flags,
        )


@dataclass
class GroupBox:
    """One group (static pattern + its encoded variable vectors)."""

    template: Template
    line_ids: List[int]
    vectors: List[EncodedVector]

    @property
    def num_entries(self) -> int:
        return len(self.line_ids)


@dataclass
class CapsuleBox:
    """All Capsules and metadata of one compressed log block."""

    block_id: int
    first_line_id: int
    num_lines: int
    padded: bool
    groups: List[GroupBox]
    #: Optional block-level trigram Bloom filter (extension): lets a query
    #: skip the whole box without decompressing its metadata.
    bloom: Optional[BloomFilter] = None

    def __post_init__(self) -> None:
        # The blob source capsules were loaded from (None for boxes built
        # in memory by the compressor); prefetch batches reads through it.
        self._source: Optional[BlobSource] = None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def serialize(self, version: int = VERSION, shared=None) -> bytes:
        """Serialize to *version* (2 by default; 1 for back-compat tests).

        With *shared* (a
        :class:`~repro.blockstore.shared.SharedTemplateStore`) the box is
        written in the flag-0x01 shared format: templates become content
        ids, and nominal dictionary capsule payloads move into the shared
        store — stored once globally, referenced here by id.  Without it
        the output is byte-identical to earlier versions.
        """
        if version not in READABLE_VERSIONS:
            raise FormatError(f"cannot serialize CapsuleBox version {version}")
        if shared is not None and version != 2:
            raise FormatError("shared-template boxes require format v2")
        # The Bloom filter sits uncompressed before the metadata section so
        # the bloom-only read path can prune a block without touching zlib.
        bloom_writer = BinaryWriter()
        if self.bloom is not None:
            bloom_writer.write_u8(1)
            self.bloom.write(bloom_writer)
        else:
            bloom_writer.write_u8(0)
        bloom_bytes = bloom_writer.getvalue()

        writer = BinaryWriter()
        blobs: List[bytes] = []
        offset = [0]

        writer.write_varint(self.block_id)
        writer.write_varint(self.first_line_id)
        writer.write_varint(self.num_lines)
        writer.write_u8(1 if self.padded else 0)
        writer.write_varint(len(self.groups))
        for group in self.groups:
            _write_template(writer, group.template, shared)
            _write_line_ids(writer, group.line_ids)
            writer.write_varint(len(group.vectors))
            for vector in group.vectors:
                _write_vector(writer, vector, blobs, offset, shared)

        meta = zlib.compress(writer.getvalue(), 6)
        payload = b"".join(blobs)
        if version == 1:
            head = BinaryWriter()
            head.write_u32(len(bloom_bytes))
            head.write_u32(len(meta))
            return (
                MAGIC + bytes([1]) + head.getvalue() + bloom_bytes + meta + payload
            )
        bloom_off = _V2_HEADER_LEN
        meta_off = bloom_off + len(bloom_bytes)
        payload_off = meta_off + len(meta)
        toc = (
            _V2_HEADER_LEN.to_bytes(2, "little")
            + bloom_off.to_bytes(4, "little")
            + len(bloom_bytes).to_bytes(4, "little")
            + meta_off.to_bytes(4, "little")
            + len(meta).to_bytes(4, "little")
            + payload_off.to_bytes(4, "little")
            + len(payload).to_bytes(4, "little")
        )
        flags = FLAG_SHARED_TEMPLATES if shared is not None else 0
        return MAGIC + bytes([2, flags]) + toc + bloom_bytes + meta + payload

    @classmethod
    def read_toc(cls, source: BlobSource) -> BoxTOC:
        """The parsed, validated header of a stored box."""
        return BoxTOC.read(source)

    @classmethod
    def read_bloom(cls, data: bytes) -> Optional[BloomFilter]:
        """Read only the block-level Bloom filter from a full blob."""
        return cls.open_bloom(BytesBlobSource(data, "<box>"))

    @classmethod
    def open_bloom(cls, source: BlobSource) -> Optional[BloomFilter]:
        """Read only the Bloom filter, via ranged reads (cheap pruning).

        Costs the header plus the bloom section — never the metadata or
        any payload — on both v1 and v2 blobs.
        """
        toc = BoxTOC.read(source)
        reader = BinaryReader(source.read(toc.bloom_off, toc.bloom_len))
        if reader.read_u8() == 0:
            return None
        return BloomFilter.read(reader)

    @classmethod
    def deserialize(cls, data: bytes, templates=None) -> "CapsuleBox":
        """Load a box from a fully-fetched blob (v1 or v2)."""
        return cls.open(BytesBlobSource(data, "<box>"), templates)

    @classmethod
    def open(cls, source: BlobSource, templates=None) -> "CapsuleBox":
        """Load a box through ranged reads: header + bloom + metadata only.

        Capsule payloads stay unfetched until first access; use
        :meth:`prefetch` to batch the ones a plan will need.  A box in
        the shared format (flag 0x01) needs *templates* — a
        :class:`~repro.blockstore.shared.TemplateResolver` — to map its
        content ids back to template tokens and shared capsule payloads;
        without one, opening it is a :class:`FormatError`.
        """
        toc = BoxTOC.read(source)
        resolver = None
        if toc.flags & FLAG_SHARED_TEMPLATES:
            if templates is None:
                raise FormatError(
                    "shared-template CapsuleBox (flag 0x01) requires a "
                    "template resolver to open"
                )
            resolver = templates
        bloom_reader = BinaryReader(source.read(toc.bloom_off, toc.bloom_len))
        bloom = BloomFilter.read(bloom_reader) if bloom_reader.read_u8() else None
        try:
            meta = zlib.decompress(source.read(toc.meta_off, toc.meta_len))
        except zlib.error as exc:
            raise FormatError(f"corrupt CapsuleBox metadata: {exc}") from exc
        reader = BinaryReader(meta)

        block_id = reader.read_varint()
        first_line_id = reader.read_varint()
        num_lines = reader.read_varint()
        padded = reader.read_u8() == 1
        groups: List[GroupBox] = []
        for _ in range(reader.read_varint()):
            template = _read_template(reader, resolver)
            line_ids = _read_line_ids(reader)
            vectors = [
                _read_vector(reader, source, toc, resolver)
                for _ in range(reader.read_varint())
            ]
            groups.append(GroupBox(template, line_ids, vectors))
        box = cls(block_id, first_line_id, num_lines, padded, groups, bloom)
        box._source = source
        return box

    # ------------------------------------------------------------------
    # payload prefetch
    # ------------------------------------------------------------------
    def prefetch(
        self,
        group_indices: Optional[Iterable[int]] = None,
        gap: int = PREFETCH_GAP,
    ) -> int:
        """Fetch the unfetched capsule payloads of the given groups (all
        groups when *group_indices* is None), coalescing adjacent extents
        into batched ranged reads.  Returns the bytes fetched.

        Reconstruction needs every vector of each hit group; fetching them
        one payload at a time would pay one store read per capsule, while
        the payloads of a group are adjacent by construction — one read
        per contiguous run covers them all.
        """
        source = self._source
        if source is None or isinstance(source, BytesBlobSource):
            # In-memory boxes have no extents; bytes-backed boxes already
            # hold the whole blob, so capsules slice it on demand.
            return 0
        groups = (
            self.groups
            if group_indices is None
            else [self.groups[i] for i in group_indices]
        )
        wanted: List[Capsule] = []
        for group in groups:
            for vector in group.vectors:
                for capsule in _capsules_of(vector):
                    if not capsule.is_fetched and capsule.payload_extent:
                        wanted.append(capsule)
        if not wanted:
            return 0
        extents = [c.payload_extent for c in wanted if c.payload_extent]
        runs = coalesce_extents(extents, gap=gap)
        buffers = [(off, source.read(off, length)) for off, length in runs]
        fetched = 0
        for capsule in wanted:
            extent = capsule.payload_extent
            if extent is None:  # pragma: no cover - filtered above
                continue
            off, length = extent
            for run_off, buf in buffers:
                if run_off <= off and off + length <= run_off + len(buf):
                    capsule.pin_payload(buf[off - run_off : off - run_off + length])
                    fetched += length
                    break
        return fetched

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def capsule_count(self) -> int:
        count = 0
        for group in self.groups:
            for vector in group.vectors:
                count += len(_capsules_of(vector))
        return count

    def payload_bytes(self) -> int:
        # compressed_bytes comes from the extent for unfetched capsules,
        # so statistics never force a payload read.
        return sum(
            capsule.compressed_bytes
            for group in self.groups
            for vector in group.vectors
            for capsule in _capsules_of(vector)
        )

    def verify(self) -> List[str]:
        """Deep integrity check; returns a list of problems (empty = ok).

        Checks every Capsule's payload checksum, decompresses it, and
        validates the structural invariants (counts, widths).
        """
        problems: List[str] = []
        for group_idx, group in enumerate(self.groups):
            if len(group.line_ids) != group.num_entries:
                problems.append(f"group {group_idx}: line id count mismatch")
            for vector_idx, vector in enumerate(group.vectors):
                where = f"group {group_idx} vector {vector_idx}"
                for capsule in _capsules_of(vector):
                    if not capsule.verify_payload():
                        problems.append(f"{where}: payload checksum mismatch")
                        continue
                    try:
                        plain = capsule.plain()
                    except Exception as exc:  # corruption despite CRC
                        problems.append(f"{where}: undecodable payload ({exc})")
                        continue
                    if (
                        capsule.layout == 0
                        and capsule.width
                        and len(plain) != capsule.width * capsule.count
                    ):
                        problems.append(f"{where}: payload size mismatch")
        return problems


def _capsules_of(vector: EncodedVector) -> List[Capsule]:
    if isinstance(vector, RealEncodedVector):
        capsules = list(vector.subvar_capsules)
        if vector.outlier_capsule is not None:
            capsules.append(vector.outlier_capsule)
        return capsules
    if isinstance(vector, NominalEncodedVector):
        return [vector.dict_capsule, vector.index_capsule]
    return [vector.capsule]


# ----------------------------------------------------------------------
# templates
# ----------------------------------------------------------------------
def _write_template(
    writer: BinaryWriter, template: Template, shared=None
) -> None:
    writer.write_varint(template.template_id)
    if shared is not None:
        # Shared format: the token list lives once in the shared store,
        # referenced here by its content id (hash of the tokens alone —
        # never the per-archive template_id).
        writer.write_str(shared.add_template(template))
        return
    writer.write_varint(len(template.tokens))
    for token in template.tokens:
        if token is None:
            writer.write_u8(1)
        else:
            writer.write_u8(0)
            writer.write_str(token)


def _read_template(reader: BinaryReader, resolver=None) -> Template:
    template_id = reader.read_varint()
    if resolver is not None:
        cid = reader.read_str()
        return Template(template_id, list(resolver.resolve_template(cid)))
    tokens: List[Optional[str]] = []
    for _ in range(reader.read_varint()):
        if reader.read_u8() == 1:
            tokens.append(None)
        else:
            tokens.append(reader.read_str())
    return Template(template_id, tokens)


def _write_line_ids(writer: BinaryWriter, line_ids: List[int]) -> None:
    # Strictly increasing within a group, so deltas are tiny and the u32
    # array's zero-heavy bytes vanish under the metadata zlib pass; parsing
    # back is C-speed, which keeps box loading off the query's critical
    # path (it dominated latency when these were per-entry varints).
    prev = 0
    deltas = []
    for line_id in line_ids:
        deltas.append(line_id - prev)
        prev = line_id
    writer.write_u32_array(deltas)


def _read_line_ids(reader: BinaryReader) -> List[int]:
    return list(accumulate(reader.read_u32_array()))


# ----------------------------------------------------------------------
# capsules with out-of-band payloads
# ----------------------------------------------------------------------
def _write_capsule(
    writer: BinaryWriter,
    capsule: Capsule,
    blobs: List[bytes],
    offset: List[int],
    shared=None,
    externalize: bool = False,
) -> None:
    writer.write_u8(capsule.layout)
    writer.write_varint(capsule.width)
    writer.write_varint(capsule.count)
    capsule.stamp.write(writer)
    writer.write_u8(capsule.codec)
    writer.write_u8(capsule.preset)
    if shared is not None:
        # Shared format: a location byte on every capsule record — 0 is
        # the inline layout below, 1 replaces (offset, length) with the
        # payload's content id in the shared store.
        if externalize:
            writer.write_u8(1)
            writer.write_str(shared.add_payload(capsule.payload))
            writer.write_varint(len(capsule.payload))
            writer.write_u32(zlib.crc32(capsule.payload))
            return
        writer.write_u8(0)
    writer.write_varint(offset[0])
    writer.write_varint(len(capsule.payload))
    # Payloads sit outside the zlib'd (self-checking) metadata stream, so
    # they carry their own checksum for `loggrep verify` / `CapsuleBox.
    # verify()`.  RAW-codec payloads would otherwise corrupt silently.
    writer.write_u32(zlib.crc32(capsule.payload))
    blobs.append(capsule.payload)
    offset[0] += len(capsule.payload)


def _read_capsule(
    reader: BinaryReader, source: BlobSource, toc: BoxTOC, resolver=None
) -> Capsule:
    layout = reader.read_u8()
    width = reader.read_varint()
    count = reader.read_varint()
    stamp = CapsuleStamp.read(reader)
    codec = reader.read_u8()
    preset = reader.read_u8()
    if resolver is not None and reader.read_u8() == 1:
        cid = reader.read_str()
        length = reader.read_varint()
        crc = reader.read_u32()
        payload = resolver.resolve_payload(cid)
        if len(payload) != length:
            raise FormatError(
                f"shared capsule payload {cid!r}: stored length "
                f"{len(payload)} != referenced length {length}"
            )
        capsule = Capsule(
            layout, width, count, stamp, codec, preset, payload=payload
        )
        capsule.expected_crc = crc
        return capsule
    off = reader.read_varint()
    length = reader.read_varint()
    crc = reader.read_u32()
    # Validate the extent against the TOC *now*: a corrupt offset must be
    # a FormatError at load time, not a failed ranged read at first use.
    if off + length > toc.payload_len:
        raise FormatError("capsule payload out of range")
    capsule = Capsule(
        layout, width, count, stamp, codec, preset,
        source=source, extent=(toc.payload_off + off, length),
    )
    capsule.expected_crc = crc
    return capsule


# ----------------------------------------------------------------------
# encoded vectors
# ----------------------------------------------------------------------
def _write_vector(
    writer: BinaryWriter,
    vector: EncodedVector,
    blobs: List[bytes],
    offset: List[int],
    shared=None,
) -> None:
    writer.write_u8(vector.tag)
    if isinstance(vector, RealEncodedVector):
        vector.pattern.write(writer)
        writer.write_varint(len(vector.subvar_capsules))
        for capsule in vector.subvar_capsules:
            _write_capsule(writer, capsule, blobs, offset, shared)
        if vector.outlier_capsule is not None:
            writer.write_u8(1)
            _write_line_ids(writer, vector.outlier_rows)
            _write_capsule(writer, vector.outlier_capsule, blobs, offset, shared)
        else:
            writer.write_u8(0)
        writer.write_varint(vector.num_rows)
    elif isinstance(vector, NominalEncodedVector):
        writer.write_varint(len(vector.dict_patterns))
        for dp in vector.dict_patterns:
            dp.pattern.write(writer)
            writer.write_varint(dp.count)
            writer.write_varint(dp.width)
            writer.write_u32_list(dp.subvar_masks)
            writer.write_u32_list(dp.subvar_maxlens)
        # Only the nominal dictionary is externalized: dictionaries hold
        # the repeated variable *values* (cross-archive redundancy);
        # index/REAL/PLAIN capsules are per-archive row data and stay
        # inline where ranged reads reach them.
        _write_capsule(writer, vector.dict_capsule, blobs, offset, shared,
                       externalize=shared is not None)
        _write_capsule(writer, vector.index_capsule, blobs, offset, shared)
        writer.write_varint(vector.index_width)
        writer.write_varint(vector.num_rows)
        writer.write_varint(vector.dict_size)
    elif isinstance(vector, PlainEncodedVector):
        _write_capsule(writer, vector.capsule, blobs, offset, shared)
        writer.write_varint(vector.num_rows)
    else:  # pragma: no cover - exhaustive over EncodedVector
        raise FormatError(f"unknown vector type {type(vector)!r}")


def _read_vector(
    reader: BinaryReader, source: BlobSource, toc: BoxTOC, resolver=None
) -> EncodedVector:
    tag = reader.read_u8()
    if tag == ENC_REAL:
        pattern = RuntimePattern.read(reader)
        subvar_capsules = [
            _read_capsule(reader, source, toc, resolver)
            for _ in range(reader.read_varint())
        ]
        outlier_capsule = None
        outlier_rows: List[int] = []
        if reader.read_u8() == 1:
            outlier_rows = _read_line_ids(reader)
            outlier_capsule = _read_capsule(reader, source, toc, resolver)
        num_rows = reader.read_varint()
        return RealEncodedVector(
            pattern, subvar_capsules, outlier_capsule, outlier_rows, num_rows
        )
    if tag == ENC_NOMINAL:
        dict_patterns: List[DictPattern] = []
        for _ in range(reader.read_varint()):
            pattern = RuntimePattern.read(reader)
            count = reader.read_varint()
            width = reader.read_varint()
            masks = reader.read_u32_list()
            maxlens = reader.read_u32_list()
            dict_patterns.append(DictPattern(pattern, count, width, masks, maxlens))
        dict_capsule = _read_capsule(reader, source, toc, resolver)
        index_capsule = _read_capsule(reader, source, toc, resolver)
        index_width = reader.read_varint()
        num_rows = reader.read_varint()
        dict_size = reader.read_varint()
        return NominalEncodedVector(
            dict_patterns, dict_capsule, index_capsule, index_width, num_rows, dict_size
        )
    if tag == ENC_PLAIN:
        capsule = _read_capsule(reader, source, toc, resolver)
        num_rows = reader.read_varint()
        return PlainEncodedVector(capsule, num_rows)
    raise FormatError(f"unknown encoded-vector tag {tag}")
