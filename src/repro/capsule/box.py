"""CapsuleBox: the on-disk unit holding one compressed log block (Fig 1).

A CapsuleBox contains every Capsule of a block plus the metadata needed to
query and reconstruct it: static patterns (templates), per-group entry line
ids, runtime patterns and Capsule stamps.

Layout::

    MAGIC "LGCB" | version u8 | meta_len u32 | zlib(meta) | payload blobs

The metadata section is small and zlib-compressed as a whole; Capsule
payloads live *outside* it, referenced by (offset, length), so a query can
load the metadata cheaply and decompress only the Capsules the Locator
could not filter out — the selective-decompression property the whole
design exists for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Optional

from ..common.binio import BinaryReader, BinaryWriter
from ..common.bloom import BloomFilter
from ..common.errors import FormatError
from ..runtime.merge import DictPattern
from ..runtime.pattern import RuntimePattern
from ..staticparse.template import Template
from .assembler import (
    ENC_NOMINAL,
    ENC_PLAIN,
    ENC_REAL,
    EncodedVector,
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
)
from .capsule import Capsule
from .stamp import CapsuleStamp

MAGIC = b"LGCB"
VERSION = 1


@dataclass
class GroupBox:
    """One group (static pattern + its encoded variable vectors)."""

    template: Template
    line_ids: List[int]
    vectors: List[EncodedVector]

    @property
    def num_entries(self) -> int:
        return len(self.line_ids)


@dataclass
class CapsuleBox:
    """All Capsules and metadata of one compressed log block."""

    block_id: int
    first_line_id: int
    num_lines: int
    padded: bool
    groups: List[GroupBox]
    #: Optional block-level trigram Bloom filter (extension): lets a query
    #: skip the whole box without decompressing its metadata.
    bloom: Optional[BloomFilter] = None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        # The Bloom filter sits uncompressed before the metadata section so
        # read_bloom() can prune a block without touching zlib.
        bloom_writer = BinaryWriter()
        if self.bloom is not None:
            bloom_writer.write_u8(1)
            self.bloom.write(bloom_writer)
        else:
            bloom_writer.write_u8(0)
        bloom_bytes = bloom_writer.getvalue()

        writer = BinaryWriter()
        blobs: List[bytes] = []
        offset = [0]

        writer.write_varint(self.block_id)
        writer.write_varint(self.first_line_id)
        writer.write_varint(self.num_lines)
        writer.write_u8(1 if self.padded else 0)
        writer.write_varint(len(self.groups))
        for group in self.groups:
            _write_template(writer, group.template)
            _write_line_ids(writer, group.line_ids)
            writer.write_varint(len(group.vectors))
            for vector in group.vectors:
                _write_vector(writer, vector, blobs, offset)

        meta = zlib.compress(writer.getvalue(), 6)
        head = BinaryWriter()
        head.write_u32(len(bloom_bytes))
        head.write_u32(len(meta))
        return (
            MAGIC
            + bytes([VERSION])
            + head.getvalue()
            + bloom_bytes
            + meta
            + b"".join(blobs)
        )

    @staticmethod
    def _sections(data: bytes):
        if data[:4] != MAGIC:
            raise FormatError("not a CapsuleBox: bad magic")
        if data[4] != VERSION:
            raise FormatError(f"unsupported CapsuleBox version {data[4]}")
        bloom_len = int.from_bytes(data[5:9], "little")
        meta_len = int.from_bytes(data[9:13], "little")
        bloom_start = 13
        meta_start = bloom_start + bloom_len
        meta_end = meta_start + meta_len
        if meta_end > len(data):
            raise FormatError("truncated CapsuleBox metadata")
        return bloom_start, meta_start, meta_end

    @classmethod
    def read_bloom(cls, data: bytes) -> Optional[BloomFilter]:
        """Read only the block-level Bloom filter (cheap pruning path)."""
        bloom_start, meta_start, _ = cls._sections(data)
        reader = BinaryReader(data[bloom_start:meta_start])
        if reader.read_u8() == 0:
            return None
        return BloomFilter.read(reader)

    @classmethod
    def deserialize(cls, data: bytes) -> "CapsuleBox":
        bloom_start, meta_start, meta_end = cls._sections(data)
        bloom_reader = BinaryReader(data[bloom_start:meta_start])
        bloom = BloomFilter.read(bloom_reader) if bloom_reader.read_u8() else None
        reader = BinaryReader(zlib.decompress(data[meta_start:meta_end]))
        blob_base = meta_end

        block_id = reader.read_varint()
        first_line_id = reader.read_varint()
        num_lines = reader.read_varint()
        padded = reader.read_u8() == 1
        groups: List[GroupBox] = []
        for _ in range(reader.read_varint()):
            template = _read_template(reader)
            line_ids = _read_line_ids(reader)
            vectors = [
                _read_vector(reader, data, blob_base)
                for _ in range(reader.read_varint())
            ]
            groups.append(GroupBox(template, line_ids, vectors))
        return cls(block_id, first_line_id, num_lines, padded, groups, bloom)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def capsule_count(self) -> int:
        count = 0
        for group in self.groups:
            for vector in group.vectors:
                count += len(_capsules_of(vector))
        return count

    def payload_bytes(self) -> int:
        return sum(
            capsule.compressed_bytes
            for group in self.groups
            for vector in group.vectors
            for capsule in _capsules_of(vector)
        )

    def verify(self) -> List[str]:
        """Deep integrity check; returns a list of problems (empty = ok).

        Checks every Capsule's payload checksum, decompresses it, and
        validates the structural invariants (counts, widths).
        """
        problems: List[str] = []
        for group_idx, group in enumerate(self.groups):
            if len(group.line_ids) != group.num_entries:
                problems.append(f"group {group_idx}: line id count mismatch")
            for vector_idx, vector in enumerate(group.vectors):
                where = f"group {group_idx} vector {vector_idx}"
                for capsule in _capsules_of(vector):
                    if not capsule.verify_payload():
                        problems.append(f"{where}: payload checksum mismatch")
                        continue
                    try:
                        plain = capsule.plain()
                    except Exception as exc:  # corruption despite CRC
                        problems.append(f"{where}: undecodable payload ({exc})")
                        continue
                    if (
                        capsule.layout == 0
                        and capsule.width
                        and len(plain) != capsule.width * capsule.count
                    ):
                        problems.append(f"{where}: payload size mismatch")
        return problems


def _capsules_of(vector: EncodedVector) -> List[Capsule]:
    if isinstance(vector, RealEncodedVector):
        capsules = list(vector.subvar_capsules)
        if vector.outlier_capsule is not None:
            capsules.append(vector.outlier_capsule)
        return capsules
    if isinstance(vector, NominalEncodedVector):
        return [vector.dict_capsule, vector.index_capsule]
    return [vector.capsule]


# ----------------------------------------------------------------------
# templates
# ----------------------------------------------------------------------
def _write_template(writer: BinaryWriter, template: Template) -> None:
    writer.write_varint(template.template_id)
    writer.write_varint(len(template.tokens))
    for token in template.tokens:
        if token is None:
            writer.write_u8(1)
        else:
            writer.write_u8(0)
            writer.write_str(token)


def _read_template(reader: BinaryReader) -> Template:
    template_id = reader.read_varint()
    tokens: List[Optional[str]] = []
    for _ in range(reader.read_varint()):
        if reader.read_u8() == 1:
            tokens.append(None)
        else:
            tokens.append(reader.read_str())
    return Template(template_id, tokens)


def _write_line_ids(writer: BinaryWriter, line_ids: List[int]) -> None:
    # Strictly increasing within a group, so deltas are tiny and the u32
    # array's zero-heavy bytes vanish under the metadata zlib pass; parsing
    # back is C-speed, which keeps box loading off the query's critical
    # path (it dominated latency when these were per-entry varints).
    prev = 0
    deltas = []
    for line_id in line_ids:
        deltas.append(line_id - prev)
        prev = line_id
    writer.write_u32_array(deltas)


def _read_line_ids(reader: BinaryReader) -> List[int]:
    return list(accumulate(reader.read_u32_array()))


# ----------------------------------------------------------------------
# capsules with out-of-band payloads
# ----------------------------------------------------------------------
def _write_capsule(
    writer: BinaryWriter, capsule: Capsule, blobs: List[bytes], offset: List[int]
) -> None:
    writer.write_u8(capsule.layout)
    writer.write_varint(capsule.width)
    writer.write_varint(capsule.count)
    capsule.stamp.write(writer)
    writer.write_u8(capsule.codec)
    writer.write_u8(capsule.preset)
    writer.write_varint(offset[0])
    writer.write_varint(len(capsule.payload))
    # Payloads sit outside the zlib'd (self-checking) metadata stream, so
    # they carry their own checksum for `loggrep verify` / `CapsuleBox.
    # verify()`.  RAW-codec payloads would otherwise corrupt silently.
    writer.write_u32(zlib.crc32(capsule.payload))
    blobs.append(capsule.payload)
    offset[0] += len(capsule.payload)


def _read_capsule(reader: BinaryReader, data: bytes, blob_base: int) -> Capsule:
    layout = reader.read_u8()
    width = reader.read_varint()
    count = reader.read_varint()
    stamp = CapsuleStamp.read(reader)
    codec = reader.read_u8()
    preset = reader.read_u8()
    off = reader.read_varint()
    length = reader.read_varint()
    crc = reader.read_u32()
    start = blob_base + off
    if start + length > len(data):
        raise FormatError("capsule payload out of range")
    capsule = Capsule(
        layout, width, count, stamp, codec, preset, data[start : start + length]
    )
    capsule.expected_crc = crc
    return capsule


# ----------------------------------------------------------------------
# encoded vectors
# ----------------------------------------------------------------------
def _write_vector(
    writer: BinaryWriter,
    vector: EncodedVector,
    blobs: List[bytes],
    offset: List[int],
) -> None:
    writer.write_u8(vector.tag)
    if isinstance(vector, RealEncodedVector):
        vector.pattern.write(writer)
        writer.write_varint(len(vector.subvar_capsules))
        for capsule in vector.subvar_capsules:
            _write_capsule(writer, capsule, blobs, offset)
        if vector.outlier_capsule is not None:
            writer.write_u8(1)
            _write_line_ids(writer, vector.outlier_rows)
            _write_capsule(writer, vector.outlier_capsule, blobs, offset)
        else:
            writer.write_u8(0)
        writer.write_varint(vector.num_rows)
    elif isinstance(vector, NominalEncodedVector):
        writer.write_varint(len(vector.dict_patterns))
        for dp in vector.dict_patterns:
            dp.pattern.write(writer)
            writer.write_varint(dp.count)
            writer.write_varint(dp.width)
            writer.write_u32_list(dp.subvar_masks)
            writer.write_u32_list(dp.subvar_maxlens)
        _write_capsule(writer, vector.dict_capsule, blobs, offset)
        _write_capsule(writer, vector.index_capsule, blobs, offset)
        writer.write_varint(vector.index_width)
        writer.write_varint(vector.num_rows)
        writer.write_varint(vector.dict_size)
    elif isinstance(vector, PlainEncodedVector):
        _write_capsule(writer, vector.capsule, blobs, offset)
        writer.write_varint(vector.num_rows)
    else:  # pragma: no cover - exhaustive over EncodedVector
        raise FormatError(f"unknown vector type {type(vector)!r}")


def _read_vector(reader: BinaryReader, data: bytes, blob_base: int) -> EncodedVector:
    tag = reader.read_u8()
    if tag == ENC_REAL:
        pattern = RuntimePattern.read(reader)
        subvar_capsules = [
            _read_capsule(reader, data, blob_base)
            for _ in range(reader.read_varint())
        ]
        outlier_capsule = None
        outlier_rows: List[int] = []
        if reader.read_u8() == 1:
            outlier_rows = _read_line_ids(reader)
            outlier_capsule = _read_capsule(reader, data, blob_base)
        num_rows = reader.read_varint()
        return RealEncodedVector(
            pattern, subvar_capsules, outlier_capsule, outlier_rows, num_rows
        )
    if tag == ENC_NOMINAL:
        dict_patterns: List[DictPattern] = []
        for _ in range(reader.read_varint()):
            pattern = RuntimePattern.read(reader)
            count = reader.read_varint()
            width = reader.read_varint()
            masks = reader.read_u32_list()
            maxlens = reader.read_u32_list()
            dict_patterns.append(DictPattern(pattern, count, width, masks, maxlens))
        dict_capsule = _read_capsule(reader, data, blob_base)
        index_capsule = _read_capsule(reader, data, blob_base)
        index_width = reader.read_varint()
        num_rows = reader.read_varint()
        dict_size = reader.read_varint()
        return NominalEncodedVector(
            dict_patterns, dict_capsule, index_capsule, index_width, num_rows, dict_size
        )
    if tag == ENC_PLAIN:
        capsule = _read_capsule(reader, data, blob_base)
        num_rows = reader.read_varint()
        return PlainEncodedVector(capsule, num_rows)
    raise FormatError(f"unknown encoded-vector tag {tag}")
