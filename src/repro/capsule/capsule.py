"""Capsules: the fine-grained compressed storage unit (paper §4.2, §5.2).

A Capsule stores one column of values — a sub-variable vector, an outlier
vector, a dictionary vector or an index vector — compressed independently
with LZMA (the paper's Packer uses LZMA for its high ratio).

Two payload layouts exist:

* **fixed** — every value padded with NUL to the Capsule's width.  This is
  the paper's design: the row of a hit is ``position // width`` (O(1)), hit
  rows can be checked directly in a second Capsule, and a pattern region of
  a dictionary can be reached by the Σ count·width jump.
* **variable** — values separated by NUL.  This exists only for the
  ``w/o fixed`` ablation (§6.3) and for LogGrep-SP; recovering a hit's row
  means counting separators, which is what the paper's padding avoids.

Values must not contain NUL; log lines are text, so the packer enforces it.
"""

from __future__ import annotations

import lzma
import zlib
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..common.binio import BinaryReader, BinaryWriter
from ..common.errors import CompressionError, FormatError
from ..obs import ledger as ledger_channel
from .stamp import CapsuleStamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..blockstore.blobsource import BlobSource

PAD = b"\x00"
PAD_CHAR = 0

#: Payload layouts.
LAYOUT_FIXED = 0
LAYOUT_VARIABLE = 1
LAYOUT_REGION = 2  # per-pattern regions of differing widths (dictionaries)

#: Codecs.  RAW is chosen automatically when compression does not pay off
#: (tiny Capsules), which both shrinks archives and speeds up queries.
#: ZLIB is the speed-tier choice: picked (opt-in) when LZMA's ratio edge
#: over zlib is below :data:`ZLIB_MARGIN`, trading a sliver of ratio for
#: much faster decompression on the query path.
CODEC_RAW = 0
CODEC_LZMA = 1
CODEC_ZLIB = 2

#: Speed-tier threshold: choose zlib when ``len(lzma) >= ZLIB_MARGIN *
#: len(zlib)`` — i.e. LZMA shrinks the payload less than 10% beyond zlib.
ZLIB_MARGIN = 0.9

_LZMA_FILTERS_BY_PRESET = {
    preset: [{"id": lzma.FILTER_LZMA2, "preset": preset}] for preset in range(10)
}


def _lzma_compress(data: bytes, preset: int) -> bytes:
    # Raw streams avoid the ~60-byte .xz container per Capsule, which
    # matters because a CapsuleBox holds many small Capsules.
    return lzma.compress(
        data, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS_BY_PRESET[preset]
    )


def _lzma_decompress(data: bytes, preset: int) -> bytes:
    return lzma.decompress(
        data, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS_BY_PRESET[preset]
    )


class Capsule:
    """A compressed column of values plus its stamp.

    The payload is **lazy**: a capsule deserialized from a stored box
    holds only its byte extent and a :class:`BlobSource`; the compressed
    bytes are fetched on first access to :attr:`payload` (or in a batched
    prefetch, see ``CapsuleBox.prefetch``).  Capsules built by the packer
    hold their bytes directly and behave exactly as before.
    """

    __slots__ = (
        "layout", "width", "count", "stamp", "codec", "preset",
        "expected_crc", "_payload", "_source", "_extent", "_plain",
        "_offsets", "__weakref__",
    )

    def __init__(
        self,
        layout: int,
        width: int,  # padded value width (fixed layout); 0 for variable
        count: int,  # number of values
        stamp: CapsuleStamp,
        codec: int,
        preset: int,
        payload: Optional[bytes] = None,
        *,
        source: Optional["BlobSource"] = None,
        extent: Optional[Tuple[int, int]] = None,
    ):
        if payload is None and (source is None or extent is None):
            raise ValueError("capsule needs a payload or a (source, extent)")
        self.layout = layout
        self.width = width
        self.count = count
        self.stamp = stamp
        self.codec = codec
        self.preset = preset
        #: CRC32 recorded at serialization time (None for in-memory
        #: capsules); checked by :meth:`verify_payload`, not on the hot
        #: read path.
        self.expected_crc: Optional[int] = None
        self._payload: Optional[bytes] = payload
        self._source: Optional["BlobSource"] = source
        self._extent: Optional[Tuple[int, int]] = extent
        self._plain: Optional[bytes] = None
        self._offsets: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # lazy payload
    # ------------------------------------------------------------------
    @property
    def payload(self) -> bytes:
        """The compressed bytes, fetched from the source on first access."""
        if self._payload is None:
            assert self._source is not None and self._extent is not None
            offset, length = self._extent
            self._payload = self._source.read(offset, length)
            ledger_channel.charge_capsule_fetch(length)
        return self._payload

    @property
    def is_fetched(self) -> bool:
        """True once the compressed bytes are resident in memory."""
        return self._payload is not None

    @property
    def payload_extent(self) -> Optional[Tuple[int, int]]:
        """(offset, length) of the payload within its blob, if stored."""
        return self._extent

    def pin_payload(self, data: bytes) -> None:
        """Install prefetched payload bytes (batched ranged read)."""
        if self._extent is not None and len(data) != self._extent[1]:
            raise FormatError(
                f"prefetched payload is {len(data)} byte(s), "
                f"expected {self._extent[1]}"
            )
        if self._payload is None:
            self._payload = data
            ledger_channel.charge_capsule_fetch(len(data))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capsule):
            return NotImplemented
        return (
            self.layout == other.layout
            and self.width == other.width
            and self.count == other.count
            and self.stamp == other.stamp
            and self.codec == other.codec
            and self.preset == other.preset
            and self.payload == other.payload
        )

    def __repr__(self) -> str:
        where = (
            f"payload={len(self._payload)}B"
            if self._payload is not None
            else f"extent={self._extent!r}"
        )
        return (
            f"Capsule(layout={self.layout}, width={self.width}, "
            f"count={self.count}, stamp={self.stamp!r}, "
            f"codec={self.codec}, preset={self.preset}, {where})"
        )

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    @classmethod
    def pack_fixed(
        cls,
        values: Sequence[str],
        preset: int = 1,
        stamp: Optional[CapsuleStamp] = None,
        width: Optional[int] = None,
        speed_tier: bool = False,
    ) -> "Capsule":
        """Pack *values* NUL-padded to a common width (§5.2)."""
        encoded = [_encode(v) for v in values]
        if width is None:
            width = max((len(e) for e in encoded), default=0)
        buf = b"".join(e.ljust(width, PAD) for e in encoded)
        stamp = stamp or CapsuleStamp.of_values(values)
        codec, payload = _choose_codec(buf, preset, speed_tier)
        return cls(LAYOUT_FIXED, width, len(values), stamp, codec, preset, payload)

    @classmethod
    def pack_variable(
        cls,
        values: Sequence[str],
        preset: int = 1,
        stamp: Optional[CapsuleStamp] = None,
        speed_tier: bool = False,
    ) -> "Capsule":
        """Pack *values* NUL-separated (the w/o-fixed ablation layout)."""
        encoded = [_encode(v) for v in values]
        buf = PAD.join(encoded)
        stamp = stamp or CapsuleStamp.of_values(values)
        codec, payload = _choose_codec(buf, preset, speed_tier)
        return cls(LAYOUT_VARIABLE, 0, len(values), stamp, codec, preset, payload)

    @classmethod
    def pack_regions(
        cls,
        regions: Sequence[Sequence[str]],
        widths: Sequence[int],
        preset: int = 1,
        speed_tier: bool = False,
    ) -> "Capsule":
        """Pack a dictionary vector: concatenated per-pattern padded regions.

        Each region's values are padded to that region's own width, so the
        start byte of region *j* is ``Σ_{i<j} count_i · width_i`` — exactly
        the direct-locating formula of §5.2.
        """
        parts: List[bytes] = []
        all_values: List[str] = []
        for region, width in zip(regions, widths):
            for value in region:
                encoded = _encode(value)
                if len(encoded) > width:
                    raise CompressionError(
                        f"value {value!r} longer than its region width {width}"
                    )
                parts.append(encoded.ljust(width, PAD))
                all_values.append(value)
        buf = b"".join(parts)
        stamp = CapsuleStamp.of_values(all_values)
        codec, payload = _choose_codec(buf, preset, speed_tier)
        return cls(LAYOUT_REGION, 0, len(all_values), stamp, codec, preset, payload)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def plain(self) -> bytes:
        """The decompressed payload (cached after the first call).

        Corrupt payloads raise :class:`FormatError` — codec-specific
        exceptions never escape the storage layer.
        """
        if self._plain is None:
            try:
                if self.codec == CODEC_RAW:
                    self._plain = self.payload
                elif self.codec == CODEC_LZMA:
                    self._plain = _lzma_decompress(self.payload, self.preset)
                elif self.codec == CODEC_ZLIB:
                    self._plain = zlib.decompress(self.payload)
                else:
                    raise FormatError(f"unknown codec {self.codec}")
            except (lzma.LZMAError, zlib.error) as exc:
                raise FormatError(f"corrupt capsule payload: {exc}") from exc
        return self._plain

    def value_at(self, row: int) -> str:
        """Fetch one value; O(1) for the fixed layout."""
        if not 0 <= row < self.count:
            raise IndexError(f"row {row} out of range 0..{self.count - 1}")
        plain = self.plain()
        if self.layout == LAYOUT_REGION:
            raise FormatError(
                "region-packed capsules need region offsets to fetch values"
            )
        if self.layout == LAYOUT_FIXED:
            if self.width == 0:
                return ""
            start = row * self.width
            return plain[start : start + self.width].rstrip(PAD).decode("utf-8")
        offsets = self._variable_offsets()
        start = offsets[row]
        end = offsets[row + 1] - 1 if row + 1 < self.count else len(plain)
        return plain[start:end].decode("utf-8")

    def values(self) -> List[str]:
        """All values, decoded."""
        plain = self.plain()
        if self.layout == LAYOUT_REGION:
            raise FormatError(
                "region-packed capsules need region metadata to list values"
            )
        if self.layout == LAYOUT_FIXED:
            if self.width == 0:
                return [""] * self.count
            return [
                plain[i * self.width : (i + 1) * self.width].rstrip(PAD).decode("utf-8")
                for i in range(self.count)
            ]
        return [part.decode("utf-8") for part in self._variable_parts()]

    def values_bytes(self) -> List[bytes]:
        """All values as raw (unpadded) bytes — no UTF-8 decode.

        The byte-level scan paths use this to test rendered values without
        materializing strings; only surviving rows are ever decoded.
        """
        plain = self.plain()
        if self.layout == LAYOUT_REGION:
            raise FormatError(
                "region-packed capsules need region metadata to list values"
            )
        if self.layout == LAYOUT_FIXED:
            if self.width == 0:
                return [b""] * self.count
            return [
                plain[i * self.width : (i + 1) * self.width].rstrip(PAD)
                for i in range(self.count)
            ]
        return self._variable_parts()

    def _variable_parts(self) -> List[bytes]:
        """Split a NUL-separated payload, validating the value count.

        A truncated payload that still passed (or bypassed) the CRC check
        would otherwise silently yield the wrong number of rows; the count
        is part of the (separately checksummed) metadata, so a mismatch is
        definitive corruption.
        """
        plain = self.plain()
        if not self.count:
            return []
        parts = plain.split(PAD)
        if len(parts) != self.count:
            raise FormatError(
                f"variable capsule payload holds {len(parts)} value(s), "
                f"expected {self.count}"
            )
        return parts

    def region_value(self, offset_bytes: int, width: int) -> str:
        """Fetch one value of a region-packed dictionary Capsule."""
        plain = self.plain()
        return plain[offset_bytes : offset_bytes + width].rstrip(PAD).decode("utf-8")

    def _variable_offsets(self) -> List[int]:
        if self._offsets is None:
            plain = self.plain()
            offsets = [0]
            pos = plain.find(PAD)
            while pos != -1:
                offsets.append(pos + 1)
                pos = plain.find(PAD, pos + 1)
            self._offsets = offsets
        return self._offsets

    @property
    def compressed_bytes(self) -> int:
        # Stored size is known from the extent even before the bytes are
        # fetched — statistics must not force a payload read.
        if self._payload is None and self._extent is not None:
            return self._extent[1]
        return len(self.payload)

    @property
    def is_decompressed(self) -> bool:
        """True once :meth:`plain` has inflated (and cached) the payload."""
        return self._plain is not None

    def verify_payload(self) -> bool:
        """Check the payload against its recorded CRC32.

        True when no checksum was recorded (in-memory capsule) or the
        checksum matches; False signals on-disk corruption.
        """
        if self.expected_crc is None:
            return True
        return zlib.crc32(self.payload) == self.expected_crc

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def write(self, writer: BinaryWriter) -> None:
        writer.write_u8(self.layout)
        writer.write_varint(self.width)
        writer.write_varint(self.count)
        self.stamp.write(writer)
        writer.write_u8(self.codec)
        writer.write_u8(self.preset)
        writer.write_bytes(self.payload)

    @classmethod
    def read(cls, reader: BinaryReader) -> "Capsule":
        layout = reader.read_u8()
        width = reader.read_varint()
        count = reader.read_varint()
        stamp = CapsuleStamp.read(reader)
        codec = reader.read_u8()
        preset = reader.read_u8()
        payload = reader.read_bytes()
        return cls(layout, width, count, stamp, codec, preset, payload)


def _encode(value: str) -> bytes:
    encoded = value.encode("utf-8")
    if PAD_CHAR in encoded:
        raise CompressionError("log values must not contain NUL bytes")
    return encoded


def _choose_codec(
    buf: bytes, preset: int, speed_tier: bool = False
) -> Tuple[int, bytes]:
    """Pick a codec for *buf*: LZMA unless the payload is tiny or
    incompressible.

    With ``speed_tier`` (config ``codec_speed_tier``, off by default so
    existing archives are byte-identical), zlib is preferred whenever
    LZMA's ratio edge over it is under :data:`ZLIB_MARGIN` — zlib inflates
    several times faster, which the query path pays on every Capsule the
    Locator could not filter.
    """
    if len(buf) < 32:
        return CODEC_RAW, buf
    if speed_tier and preset == 0:
        # Preset 0 on the speed tier means the caller wants the bytes
        # queryable *now* (the hot tail): paying an LZMA probe just to
        # discard it would roughly double the encode latency.
        payload = zlib.compress(buf, 1)
        if len(payload) >= len(buf):
            return CODEC_RAW, buf
        return CODEC_ZLIB, payload
    lzma_payload = _lzma_compress(buf, preset)
    codec, payload = CODEC_LZMA, lzma_payload
    if speed_tier:
        zlib_payload = zlib.compress(buf, 6)
        if len(lzma_payload) >= ZLIB_MARGIN * len(zlib_payload):
            codec, payload = CODEC_ZLIB, zlib_payload
    if len(payload) >= len(buf):
        return CODEC_RAW, buf
    return codec, payload
