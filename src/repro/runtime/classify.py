"""Variable-vector categorization (paper §4.1, Fig 3).

The extractor must decide whether a vector is dominated by a single runtime
pattern (block numbers, timestamps, request ids — values rarely repeat) or
may hold several patterns (file paths, error codes — values repeat a lot).
The paper's heuristic is the **duplication rate**
``(total - unique) / total``: vectors below the threshold are *real*
(single-pattern, tree expanding), vectors at or above it are *nominal*
(multi-pattern, pattern merging).  Fig 3's bathtub shape makes the exact
threshold uncritical; the paper picks 0.5.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

#: The paper's threshold separating real from nominal vectors.
DEFAULT_DUPLICATION_THRESHOLD = 0.5


class VectorKind(enum.Enum):
    """How a variable vector will be structurized."""

    REAL = "real"  # low duplication → tree expanding (§4.1, Fig 4)
    NOMINAL = "nominal"  # high duplication → pattern merging (§4.1, Fig 5)


def duplication_rate(values: Sequence[str]) -> float:
    """``(total_count - unique_count) / total_count``; 0.0 for empty input."""
    total = len(values)
    if total == 0:
        return 0.0
    return (total - len(set(values))) / total


def classify(
    values: Sequence[str],
    threshold: float = DEFAULT_DUPLICATION_THRESHOLD,
) -> VectorKind:
    """Apply the duplication-rate heuristic to one variable vector."""
    if duplication_rate(values) < threshold:
        return VectorKind.REAL
    return VectorKind.NOMINAL


def classify_with_rate(
    values: Sequence[str],
    threshold: float = DEFAULT_DUPLICATION_THRESHOLD,
) -> Tuple[VectorKind, float]:
    """Like :func:`classify` but also returns the measured rate."""
    rate = duplication_rate(values)
    kind = VectorKind.REAL if rate < threshold else VectorKind.NOMINAL
    return kind, rate
