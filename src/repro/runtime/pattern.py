"""Runtime-pattern model.

A *runtime pattern* (paper §2.3) is structure that appears within one
variable vector at run time — e.g. every value of a ``filepath`` variable
in a block matching ``/tmp/1FF8<*>.log``.  A pattern is a sequence of
constant fragments and **sub-variables**; all values of the same
sub-variable across the vector form a *sub-variable vector*, which becomes
its own Capsule (§4.2).

:meth:`RuntimePattern.match` splits a concrete value into its sub-values,
anchoring each constant at its first occurrence left-to-right — the same
greedy rule the tree-expanding extractor uses, so values the extractor
would have split are matched consistently.  Values that do not match go to
the outlier Capsule; accuracy affects performance, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..common.binio import BinaryReader, BinaryWriter


@dataclass(frozen=True)
class Const:
    """A literal fragment of a runtime pattern."""

    text: str


@dataclass(frozen=True)
class SubVar:
    """A variable part of a runtime pattern (one ``<*>``).

    ``index`` is the sub-variable's ordinal within its pattern; it names the
    Capsule holding the corresponding sub-variable vector.
    """

    index: int


Element = Union[Const, SubVar]


class RuntimePattern:
    """An ordered mix of :class:`Const` and :class:`SubVar` elements."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[Element]):
        self.elements = list(_normalize(elements))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_subvars(self) -> int:
        return sum(1 for el in self.elements if isinstance(el, SubVar))

    @property
    def is_trivial(self) -> bool:
        """True when the pattern is a single bare sub-variable (no structure
        was found — equivalent to the static-pattern-only encoding)."""
        return len(self.elements) == 1 and isinstance(self.elements[0], SubVar)

    @property
    def is_constant(self) -> bool:
        """True when the pattern has no sub-variables at all."""
        return self.num_subvars == 0

    def constant_text(self) -> str:
        """Concatenated constant fragments (for keyword-in-constant checks)."""
        return "".join(el.text for el in self.elements if isinstance(el, Const))

    def display(self) -> str:
        parts = []
        for el in self.elements:
            parts.append(el.text if isinstance(el, Const) else "<*>")
        return "".join(parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RuntimePattern) and self.elements == other.elements

    def __hash__(self) -> int:
        return hash(tuple(self.elements))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RuntimePattern({self.display()!r})"

    # ------------------------------------------------------------------
    # value matching
    # ------------------------------------------------------------------
    def match(self, value: str) -> Optional[List[str]]:
        """Split *value* into sub-values, or None when it doesn't fit.

        Constants anchor greedily: a leading constant must be a prefix, a
        trailing constant a suffix, and interior constants bind to their
        first occurrence after the previous element.
        """
        elements = self.elements
        n = len(elements)
        subvalues: List[str] = []
        pos = 0
        pending_subvar = False  # a SubVar is waiting for its right boundary
        for i, el in enumerate(elements):
            if isinstance(el, SubVar):
                if pending_subvar:
                    # Two adjacent sub-variables cannot be disambiguated;
                    # give the first an empty value (normalize() prevents
                    # this arising from our own extractors).
                    subvalues.append("")
                pending_subvar = True
                continue
            text = el.text
            if i == 0:
                if not value.startswith(text):
                    return None
                pos = len(text)
            elif i == n - 1:
                if not value.endswith(text) or len(value) - len(text) < pos:
                    return None
                if pending_subvar:
                    subvalues.append(value[pos : len(value) - len(text)])
                    pending_subvar = False
                pos = len(value)
            else:
                found = value.find(text, pos)
                if found == -1:
                    return None
                if pending_subvar:
                    subvalues.append(value[pos:found])
                    pending_subvar = False
                pos = found + len(text)
        if pending_subvar:
            subvalues.append(value[pos:])
            pos = len(value)
        if pos != len(value):
            return None
        return subvalues

    def render(self, subvalues: Sequence[str]) -> str:
        """Inverse of :meth:`match`."""
        out = []
        for el in self.elements:
            if isinstance(el, Const):
                out.append(el.text)
            else:
                out.append(subvalues[el.index])
        return "".join(out)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def write(self, writer: BinaryWriter) -> None:
        writer.write_varint(len(self.elements))
        for el in self.elements:
            if isinstance(el, Const):
                writer.write_u8(0)
                writer.write_str(el.text)
            else:
                writer.write_u8(1)
                writer.write_varint(el.index)

    @classmethod
    def read(cls, reader: BinaryReader) -> "RuntimePattern":
        count = reader.read_varint()
        elements: List[Element] = []
        for _ in range(count):
            kind = reader.read_u8()
            if kind == 0:
                elements.append(Const(reader.read_str()))
            else:
                elements.append(SubVar(reader.read_varint()))
        pattern = cls.__new__(cls)
        pattern.elements = elements
        return pattern


def _normalize(elements: Sequence[Element]):
    """Merge adjacent constants, drop empty ones, renumber sub-variables."""
    merged: List[Element] = []
    next_index = 0
    for el in elements:
        if isinstance(el, Const):
            if not el.text:
                continue
            if merged and isinstance(merged[-1], Const):
                merged[-1] = Const(merged[-1].text + el.text)
            else:
                merged.append(el)
        else:
            merged.append(SubVar(next_index))
            next_index += 1
    return merged


def pattern_from_fragments(fragments: Sequence[Optional[str]]) -> RuntimePattern:
    """Build a pattern from a fragment list where ``None`` marks a sub-variable."""
    elements: List[Element] = []
    idx = 0
    for frag in fragments:
        if frag is None:
            elements.append(SubVar(idx))
            idx += 1
        else:
            elements.append(Const(frag))
    return RuntimePattern(elements)
