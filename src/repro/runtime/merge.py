"""Pattern-merging extraction for nominal variable vectors (paper §4.1, Fig 5).

Nominal vectors (duplication rate ≥ 0.5) have few unique values but those
values may follow several patterns.  The extractor:

1. dedupes the vector into a temporary vector of unique values;
2. splits each unique value into a *pattern sketch* using the
   non-alphanumeric characters as delimiters;
3. merges values with the same sketch; a sub-variable whose fragment is
   identical across a sketch's values is folded into a constant;
4. reorders the unique values so that all values of the same pattern are
   stored sequentially — this is the **dictionary vector** — and replaces
   each original value with its dictionary slot, producing the
   **index vector** of fixed-width decimal indices.

The sketch grouping sorts the unique values (O(n log n)), which is cheap
because only deduplicated values are processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import chartypes
from .pattern import Const, Element, RuntimePattern, SubVar


@dataclass
class DictPattern:
    """One merged pattern of a dictionary vector plus its stamp data.

    ``count`` and ``width`` are recorded in the Capsule stamp (§4.3) and
    enable the Σ count·width jump into the padded dictionary region (§5.2).
    """

    pattern: RuntimePattern
    count: int
    width: int
    subvar_masks: List[int] = field(default_factory=list)
    subvar_maxlens: List[int] = field(default_factory=list)

    def display(self) -> str:
        return f"{self.pattern.display()} (cnt={self.count}, len={self.width})"


@dataclass
class NominalEncoding:
    """The full result of pattern merging for one variable vector."""

    patterns: List[DictPattern]
    dict_values: List[str]  # unique values, grouped by pattern
    index: List[int]  # original row → dictionary slot
    index_width: int  # IdxLen: decimal digits per index entry

    @property
    def num_rows(self) -> int:
        return len(self.index)

    def pattern_region(self, pattern_idx: int) -> Tuple[int, int]:
        """(first dictionary slot, slot count) of a pattern's region."""
        start = sum(p.count for p in self.patterns[:pattern_idx])
        return start, self.patterns[pattern_idx].count

    def value_at(self, row: int) -> str:
        return self.dict_values[self.index[row]]


def sketch_of(value: str) -> Tuple[Tuple[Optional[str], ...], List[str]]:
    """Split *value* into a pattern sketch.

    Returns ``(key, fragments)`` where *key* is the sketch shape — a tuple
    holding delimiter strings for non-alphanumeric runs and ``None`` for
    alphanumeric runs — and *fragments* holds the text of the alphanumeric
    runs (the prospective sub-variable values).
    """
    key: List[Optional[str]] = []
    fragments: List[str] = []
    i = 0
    n = len(value)
    while i < n:
        start = i
        if value[i].isalnum():
            while i < n and value[i].isalnum():
                i += 1
            key.append(None)
            fragments.append(value[start:i])
        else:
            while i < n and not value[i].isalnum():
                i += 1
            key.append(value[start:i])
    return tuple(key), fragments


def extract_nominal(values: Sequence[str]) -> NominalEncoding:
    """Run the pattern-merging pipeline on one variable vector."""
    uniques = list(dict.fromkeys(values))

    groups: Dict[Tuple[Optional[str], ...], List[Tuple[str, List[str]]]] = {}
    for value in uniques:
        key, fragments = sketch_of(value)
        groups.setdefault(key, []).append((value, fragments))

    # Sort sketches for a deterministic dictionary layout (the paper sorts
    # the sketches so same-pattern values are stored sequentially).
    ordered_keys = sorted(groups, key=_sketch_sort_key)

    patterns: List[DictPattern] = []
    dict_values: List[str] = []
    slot_of: Dict[str, int] = {}
    for key in ordered_keys:
        members = groups[key]
        patterns.append(_merge_group(key, members))
        for value, _ in members:
            slot_of[value] = len(dict_values)
            dict_values.append(value)

    index = [slot_of[value] for value in values]
    index_width = len(str(len(dict_values) - 1)) if dict_values else 1
    return NominalEncoding(patterns, dict_values, index, index_width)


def _merge_group(
    key: Tuple[Optional[str], ...],
    members: List[Tuple[str, List[str]]],
) -> DictPattern:
    """Merge the values of one sketch into a pattern, folding constants."""
    elements: List[Element] = []
    subvar_masks: List[int] = []
    subvar_maxlens: List[int] = []
    frag_pos = 0
    subvar_idx = 0
    for part in key:
        if part is not None:
            elements.append(Const(part))
            continue
        column = [fragments[frag_pos] for _, fragments in members]
        frag_pos += 1
        first = column[0]
        if all(frag == first for frag in column):
            elements.append(Const(first))
        else:
            elements.append(SubVar(subvar_idx))
            subvar_idx += 1
            subvar_masks.append(chartypes.type_mask_of_values(column))
            subvar_maxlens.append(max(len(frag) for frag in column))
    width = max((len(value) for value, _ in members), default=0)
    return DictPattern(
        RuntimePattern(elements),
        count=len(members),
        width=width,
        subvar_masks=subvar_masks,
        subvar_maxlens=subvar_maxlens,
    )


def _sketch_sort_key(key: Tuple[Optional[str], ...]) -> Tuple:
    """Total order over sketch keys (None sorts before any string)."""
    return tuple((0, "") if part is None else (1, part) for part in key)
