"""Runtime-pattern extraction: the paper's core contribution (§4)."""

from .classify import (
    DEFAULT_DUPLICATION_THRESHOLD,
    VectorKind,
    classify,
    classify_with_rate,
    duplication_rate,
)
from .merge import DictPattern, NominalEncoding, extract_nominal, sketch_of
from .pattern import Const, RuntimePattern, SubVar, pattern_from_fragments
from .treeexpand import TreeExpandConfig, extract_real_pattern

__all__ = [
    "VectorKind",
    "classify",
    "classify_with_rate",
    "duplication_rate",
    "DEFAULT_DUPLICATION_THRESHOLD",
    "RuntimePattern",
    "Const",
    "SubVar",
    "pattern_from_fragments",
    "TreeExpandConfig",
    "extract_real_pattern",
    "DictPattern",
    "NominalEncoding",
    "extract_nominal",
    "sketch_of",
]
