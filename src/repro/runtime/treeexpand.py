"""Tree-expanding runtime-pattern extraction for real variable vectors
(paper §4.1, Fig 4).

Real vectors (duplication rate < 0.5) are assumed to be dominated by one
pattern, which admits an O(n) extractor: put the unique values of a 5%
sample in a root node, then repeatedly split every splittable leaf by a
*delimiter* — either a non-alphanumeric character taken from a randomly
picked value, or the longest common substring (LCS) of two randomly picked
values.  A delimiter is accepted when at least 95% of the leaf's values
contain it; each leaf gets three probes before being marked unsplitable.
Values that miss an accepted delimiter are evicted (they would land in the
outlier Capsule anyway).  When expansion terminates, all-equal leaves
become constants and the rest become sub-variables.

The iteration count is bounded by the number of sub-variables in the true
pattern (a property of the pattern, not of n), hence O(n) overall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.sampling import DEFAULT_SAMPLE_RATE, sample
from ..common.textalgo import longest_common_substring
from .pattern import Const, Element, RuntimePattern, SubVar

#: A delimiter must appear in at least this fraction of a leaf's values.
DEFAULT_COVERAGE = 0.95

#: Probes per leaf before it is marked unsplitable.
DEFAULT_PROBES = 3

#: Safety valve against pathological over-splitting.
MAX_ELEMENTS = 48

#: An LCS shorter than this is noise, not structure.
MIN_LCS_LEN = 2


@dataclass
class TreeExpandConfig:
    """Tuning knobs of the extractor; defaults are the paper's choices."""

    sample_rate: float = DEFAULT_SAMPLE_RATE
    coverage: float = DEFAULT_COVERAGE
    probes: int = DEFAULT_PROBES
    max_elements: int = MAX_ELEMENTS
    seed: int = 0


class _Leaf:
    """A column of aligned value fragments during expansion."""

    __slots__ = ("fragments", "done")

    def __init__(self, fragments: List[str], done: bool = False):
        self.fragments = fragments
        self.done = done

    def uniform(self) -> bool:
        first = self.fragments[0]
        return all(frag == first for frag in self.fragments)


def extract_real_pattern(
    values: Sequence[str],
    config: Optional[TreeExpandConfig] = None,
) -> RuntimePattern:
    """Extract the dominating runtime pattern of a real variable vector.

    Always returns a pattern; when no structure is found the result is the
    trivial single-sub-variable pattern (``<*>``), which degrades gracefully
    to the static-pattern-only encoding.
    """
    config = config or TreeExpandConfig()
    rng = random.Random(config.seed)

    uniques = list(dict.fromkeys(sample(values, config.sample_rate, config.seed)))
    if not uniques:
        return RuntimePattern([SubVar(0)])

    leaves: List[_Leaf] = [_Leaf(uniques)]
    if leaves[0].uniform():
        leaves[0].done = True

    progress = True
    while progress and len(leaves) < config.max_elements:
        progress = False
        for leaf_idx in range(len(leaves)):
            leaf = leaves[leaf_idx]
            if leaf.done:
                continue
            if leaf.uniform():
                leaf.done = True
                continue
            delimiter = _probe_delimiter(leaf, rng, config)
            if delimiter is None:
                leaf.done = True
                continue
            _split_leaf(leaves, leaf_idx, delimiter)
            progress = True
            break  # leaf list changed; restart the sweep

    elements: List[Element] = []
    subvar_index = 0
    for leaf in leaves:
        if leaf.uniform():
            elements.append(Const(leaf.fragments[0]))
        else:
            elements.append(SubVar(subvar_index))
            subvar_index += 1
    pattern = RuntimePattern(elements)
    if not pattern.elements:
        return RuntimePattern([SubVar(0)])
    return pattern


def _probe_delimiter(
    leaf: _Leaf, rng: random.Random, config: TreeExpandConfig
) -> Optional[str]:
    """Try up to ``config.probes`` candidate delimiters on *leaf*.

    Candidates alternate between the two sources the paper names:
    non-alphanumeric characters (they tend to separate semantic parts) and
    the LCS of two random values (same-block values share literal infixes).
    """
    threshold = config.coverage
    n = len(leaf.fragments)
    tried = set()
    for attempt in range(config.probes):
        candidate = None
        value = rng.choice(leaf.fragments)
        if attempt % 2 == 0:
            non_alnum = [ch for ch in value if not ch.isalnum()]
            if non_alnum:
                candidate = rng.choice(non_alnum)
        if candidate is None:
            other = rng.choice(leaf.fragments)
            lcs = longest_common_substring(value, other)
            if len(lcs) >= MIN_LCS_LEN:
                candidate = lcs
        if not candidate or candidate in tried:
            continue
        tried.add(candidate)
        contains = sum(1 for frag in leaf.fragments if candidate in frag)
        if contains >= threshold * n and contains >= 1:
            return candidate
    return None


def _split_leaf(leaves: List[_Leaf], leaf_idx: int, delimiter: str) -> None:
    """Split ``leaves[leaf_idx]`` at the first occurrence of *delimiter*.

    Rows lacking the delimiter are evicted from *every* leaf (their original
    values will be stored as outliers by the assembler).
    """
    target = leaves[leaf_idx]
    keep: List[bool] = []
    lefts: List[str] = []
    rights: List[str] = []
    for frag in target.fragments:
        pos = frag.find(delimiter)
        if pos == -1:
            keep.append(False)
        else:
            keep.append(True)
            lefts.append(frag[:pos])
            rights.append(frag[pos + len(delimiter) :])
    if not any(keep):
        target.done = True
        return
    if not all(keep):
        for other_idx, other in enumerate(leaves):
            if other_idx == leaf_idx:
                continue
            other.fragments = [
                frag for frag, ok in zip(other.fragments, keep) if ok
            ]
    left_leaf = _Leaf(lefts)
    const_leaf = _Leaf([delimiter] * len(lefts), done=True)
    right_leaf = _Leaf(rights)
    leaves[leaf_idx : leaf_idx + 1] = [left_leaf, const_leaf, right_leaf]
