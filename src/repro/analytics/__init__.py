"""Structure-based aggregation on compressed logs (the §2 "second phase"),
running directly on Capsule columns — no line reconstruction."""

from .aggregate import (
    NumericStats,
    count_values,
    group_count,
    histogram,
    numeric_stats,
    top_k,
)
from .analyzer import Analyzer
from .schema import FieldRef, Schema, discover_schema

__all__ = [
    "Analyzer",
    "Schema",
    "FieldRef",
    "discover_schema",
    "NumericStats",
    "count_values",
    "top_k",
    "numeric_stats",
    "group_count",
    "histogram",
]
