"""The Analyzer: structure-based aggregation directly on Capsules.

This is the paper's "second phase" (§2) built on LogGrep's own storage:
because groups are relations and variable vectors are columns, a
``count_by``/``top_k``/``stats`` never reconstructs a single log line.

Since the aggregation pushdown, the Analyzer is a thin facade over the
query planner: every call builds an aggregate :class:`~repro.query.plan.
QueryPlan` and hands it to ``LogGrep.aggregate`` — so analytics run on
the same operator pipeline as ``grep`` (BloomPrune, BoxCache, lazy I/O,
the ``query_parallelism`` thread pool, the ledger) and per-block partial
aggregates merge order-independently.  No store blob or CapsuleBox is
ever loaded here directly.

    analyzer = Analyzer(lg)
    analyzer.fields()                          # discovered schema
    analyzer.count_by("Project", where="ERROR")
    analyzer.stats_of("latency")               # numeric summary
    analyzer.top_k("reqId", k=5, where="ERROR")
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.loggrep import AggregateResult, LogGrep
from ..query.aggregate import AggregateSpec, Bucket, NumericStats, parse_number
from ..query.modes import AggregateKind
from ..query.schema import Schema, schema_of
from ..query.stats import QueryStats

_FILTER_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
}


class Analyzer:
    """Columnar aggregation over a LogGrep archive."""

    def __init__(self, loggrep: LogGrep):
        self.loggrep = loggrep
        #: Merged execution stats of every aggregate this analyzer ran.
        self.stats = QueryStats()

    def _run(
        self, spec: AggregateSpec, where: Optional[str]
    ) -> AggregateResult:
        """One pushed-down aggregate; folds its stats into ``self.stats``."""
        result = self.loggrep.aggregate(spec, where or None)
        self.stats.merge(result.stats)
        return result

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def schemas(self) -> Dict[str, Schema]:
        """block name → discovered schema.

        Boxes load through the executor (shared BoxCache; metadata-only
        under lazy I/O — discovery never touches capsule payloads).
        """
        executor = self.loggrep.executor
        return {
            name: schema_of(executor.load_box(name))
            for name in executor.source.names()
        }

    def fields(self) -> List[str]:
        """All field names across the archive (discovery order)."""
        seen: Dict[str, None] = {}
        for schema in self.schemas().values():
            for name in schema.names():
                seen.setdefault(name, None)
        return list(seen)

    # ------------------------------------------------------------------
    # column extraction
    # ------------------------------------------------------------------
    def column(self, field: str, where: Optional[str] = None) -> Iterator[str]:
        """Stream the values of *field*, optionally filtered by a query.

        Runs as a ``VALUES`` aggregate plan: only the Capsules of the
        requested column (and whatever the WHERE filter needed) are
        decompressed — log lines are never rebuilt.
        """
        spec = AggregateSpec(AggregateKind.VALUES, field)
        values: List[str] = self._run(spec, where).value  # type: ignore[assignment]
        yield from values

    def pairs(
        self, key_field: str, value_field: str, where: Optional[str] = None
    ) -> Iterator[Tuple[str, str]]:
        """Stream (key, value) pairs for group-by aggregations.

        Both fields must live in the same group (the same log template),
        otherwise the rows cannot be joined.
        """
        spec = AggregateSpec(
            AggregateKind.PAIRS, key_field, value_field=value_field
        )
        extracted: List[Tuple[str, str]] = self._run(spec, where).value  # type: ignore[assignment]
        yield from extracted

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def count_by(
        self, field: str, where: Optional[str] = None
    ) -> "Counter[str]":
        """value → number of entries, SQL ``GROUP BY field COUNT(*)`` —
        counted from dictionary index cells, no payload decode."""
        spec = AggregateSpec(AggregateKind.COUNT_BY, field)
        return self._run(spec, where).value  # type: ignore[return-value]

    def top_k(
        self, field: str, k: int = 10, where: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        spec = AggregateSpec(AggregateKind.TOP_K, field, k=k)
        return self._run(spec, where).value  # type: ignore[return-value]

    def stats_of(self, field: str, where: Optional[str] = None) -> NumericStats:
        """Numeric summary (count/min/max/mean/p50/p95/p99 + nulls)."""
        spec = AggregateSpec(AggregateKind.STATS, field)
        return self._run(spec, where).value  # type: ignore[return-value]

    def count_templates(self, where: Optional[str] = None) -> "Counter[str]":
        """Entries per static pattern — ``COUNT BY template`` (§2)."""
        spec = AggregateSpec(AggregateKind.COUNT_BY_TEMPLATE)
        return self._run(spec, where).value  # type: ignore[return-value]

    def distinct(self, field: str, where: Optional[str] = None) -> List[str]:
        seen: Dict[str, None] = {}
        for value in self.column(field, where):
            seen.setdefault(value, None)
        return list(seen)

    def filter_numeric(
        self,
        field: str,
        op: str,
        threshold: float,
        where: Optional[str] = None,
    ) -> int:
        """Count entries whose numeric *field* satisfies ``op threshold``.

        Supported ops: ``>``, ``>=``, ``<``, ``<=``, ``==``.  Values parse
        like :func:`~repro.query.aggregate.parse_number` (unit suffixes
        tolerated).  Runs on the per-distinct-value counts of a pushed-down
        ``COUNT_BY`` plan — the columnar ``WHERE latency > 50000`` scan
        without decoding each row.
        """
        if op not in _FILTER_OPS:
            raise ValueError(
                f"unsupported operator {op!r}; one of {sorted(_FILTER_OPS)}"
            )
        compare = _FILTER_OPS[op]
        count = 0
        for value, n in self.count_by(field, where).items():
            number = parse_number(value)
            if number is not None and compare(number, threshold):
                count += n
        return count

    def timeline(self, where: str, buckets: int = 20) -> List[Bucket]:
        """Hit rate over logical time: (first id, last id, hits) buckets.

        Line ids are the archive's logical clock (§3's timestamp
        substitute), so bucketing hit ids shows when an incident started
        and how it evolved — without reconstructing a single line.
        """
        total = self.loggrep.total_lines()
        if total == 0 or buckets <= 0:
            return []
        spec = LogGrep._timeseries_spec(total, buckets)
        return self._run(spec, where).value  # type: ignore[return-value]
