"""The Analyzer: structure-based aggregation directly on Capsules.

This is the paper's "second phase" (§2) built on LogGrep's own storage:
because groups are relations and variable vectors are columns, a
``count_by``/``top_k``/``stats`` never reconstructs a single log line —
it locates rows with the normal query engine, then pulls just the *one*
column it needs out of the Capsules.

    analyzer = Analyzer(lg)
    analyzer.fields()                          # discovered schema
    analyzer.count_by("Project", where="ERROR")
    analyzer.stats("latency")                  # numeric summary
    analyzer.top_k("reqId", k=5, where="ERROR")
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..capsule.box import CapsuleBox
from ..common.rowset import RowSet
from ..core.loggrep import LogGrep
from ..query.engine import BlockEngine
from ..query.language import parse_query
from ..query.stats import QueryStats
from .aggregate import NumericStats, count_values, numeric_stats, top_k as _top_k
from .schema import FieldRef, Schema, discover_schema


class Analyzer:
    """Columnar aggregation over a LogGrep archive."""

    def __init__(self, loggrep: LogGrep):
        self.loggrep = loggrep
        self.stats = QueryStats()

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def schemas(self) -> Dict[str, Schema]:
        """block name → discovered schema."""
        return {
            name: discover_schema(self.loggrep._load_box(name))
            for name in self.loggrep.store.names()
        }

    def fields(self) -> List[str]:
        """All field names across the archive (discovery order)."""
        seen: Dict[str, None] = {}
        for schema in self.schemas().values():
            for name in schema.names():
                seen.setdefault(name, None)
        return list(seen)

    # ------------------------------------------------------------------
    # column extraction
    # ------------------------------------------------------------------
    def column(self, field: str, where: Optional[str] = None) -> Iterator[str]:
        """Stream the values of *field*, optionally filtered by a query.

        Only the Capsules of the requested column (and whatever the WHERE
        filter needed) are decompressed — log lines are never rebuilt.
        """
        command = parse_query(where) if where else None
        for name in self.loggrep.store.names():
            box = self.loggrep._load_box(name)
            schema = discover_schema(box)
            refs = schema.by_name(field)
            if not refs:
                continue
            settings = self.loggrep.config.query_settings()
            engine = BlockEngine(box, settings, self.stats)
            hits = engine.execute(command) if command is not None else None
            for ref in refs:
                rows = self._rows_for(box, ref, hits)
                if rows is None:
                    continue
                if ref.is_constant:
                    for _ in range(len(rows)):
                        yield ref.constant
                    continue
                reader = engine.reader(ref.group_index, ref.var_index)
                if rows.is_full():
                    for value in reader.values_list():
                        yield ref.clean(value)
                else:
                    for row in rows:
                        yield ref.clean(reader.value_at(row))

    @staticmethod
    def _rows_for(
        box: CapsuleBox, ref: FieldRef, hits: Optional[Dict[int, RowSet]]
    ) -> Optional[RowSet]:
        group = box.groups[ref.group_index]
        if group.num_entries == 0:
            return None
        if hits is None:
            return RowSet.full(group.num_entries)
        return hits.get(ref.group_index)

    def pairs(
        self, key_field: str, value_field: str, where: Optional[str] = None
    ) -> Iterator[Tuple[str, str]]:
        """Stream (key, value) pairs for group-by aggregations.

        Both fields must live in the same group (the same log template),
        otherwise the rows cannot be joined.
        """
        command = parse_query(where) if where else None
        for name in self.loggrep.store.names():
            box = self.loggrep._load_box(name)
            schema = discover_schema(box)
            value_refs = {
                (ref.group_index): ref for ref in schema.by_name(value_field)
            }
            settings = self.loggrep.config.query_settings()
            engine = BlockEngine(box, settings, self.stats)
            hits = engine.execute(command) if command is not None else None
            for key_ref in schema.by_name(key_field):
                value_ref = value_refs.get(key_ref.group_index)
                if value_ref is None:
                    continue
                rows = self._rows_for(box, key_ref, hits)
                if rows is None:
                    continue

                def _column(ref):
                    if ref.is_constant:
                        return None
                    return engine.reader(ref.group_index, ref.var_index)

                key_reader = _column(key_ref)
                value_reader = _column(value_ref)

                def _value(ref, reader, row):
                    if ref.is_constant:
                        return ref.constant
                    return ref.clean(reader.value_at(row))

                if rows.is_full() and key_reader and value_reader:
                    for key, value in zip(
                        key_reader.values_list(), value_reader.values_list()
                    ):
                        yield key_ref.clean(key), value_ref.clean(value)
                else:
                    for row in rows:
                        yield (
                            _value(key_ref, key_reader, row),
                            _value(value_ref, value_reader, row),
                        )

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def count_by(self, field: str, where: Optional[str] = None) -> Counter:
        """value → number of entries, SQL ``GROUP BY field COUNT(*)``."""
        return count_values(self.column(field, where))

    def top_k(
        self, field: str, k: int = 10, where: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        return _top_k(self.column(field, where), k)

    def stats_of(self, field: str, where: Optional[str] = None) -> NumericStats:
        """Numeric summary (count/min/max/mean/p50/p95/p99)."""
        return numeric_stats(self.column(field, where))

    def distinct(self, field: str, where: Optional[str] = None) -> List[str]:
        seen: Dict[str, None] = {}
        for value in self.column(field, where):
            seen.setdefault(value, None)
        return list(seen)

    def filter_numeric(
        self,
        field: str,
        op: str,
        threshold: float,
        where: Optional[str] = None,
    ) -> int:
        """Count entries whose numeric *field* satisfies ``op threshold``.

        Supported ops: ``>``, ``>=``, ``<``, ``<=``, ``==``.  Values parse
        like :func:`~repro.analytics.aggregate.parse_number` (unit suffixes
        tolerated).  This is the columnar ``WHERE latency > 50000`` scan:
        only the field's Capsules are decompressed.
        """
        import operator

        ops = {
            ">": operator.gt,
            ">=": operator.ge,
            "<": operator.lt,
            "<=": operator.le,
            "==": operator.eq,
        }
        if op not in ops:
            raise ValueError(f"unsupported operator {op!r}; one of {sorted(ops)}")
        compare = ops[op]
        from .aggregate import parse_number

        count = 0
        for value in self.column(field, where):
            number = parse_number(value)
            if number is not None and compare(number, threshold):
                count += 1
        return count

    def timeline(
        self, where: str, buckets: int = 20
    ) -> List[Tuple[int, int, int]]:
        """Hit rate over logical time: (first id, last id, hits) buckets.

        Line ids are the archive's logical clock (§3's timestamp
        substitute), so bucketing hit ids shows when an incident started
        and how it evolved — without reconstructing a single line.
        """
        command = parse_query(where)
        hit_ids: List[int] = []
        total_lines = 0
        for name in self.loggrep.store.names():
            box = self.loggrep._load_box(name)
            total_lines = max(total_lines, box.first_line_id + box.num_lines)
            settings = self.loggrep.config.query_settings()
            engine = BlockEngine(box, settings, self.stats)
            for group_idx, rows in engine.execute(command).items():
                line_ids = box.groups[group_idx].line_ids
                for row in rows:
                    hit_ids.append(box.first_line_id + line_ids[row])
        if total_lines == 0 or buckets <= 0:
            return []
        width = max(1, -(-total_lines // buckets))  # ceil division
        counts = [0] * buckets
        for hit in hit_ids:
            counts[min(buckets - 1, hit // width)] += 1
        return [
            (i * width, min(total_lines, (i + 1) * width) - 1, counts[i])
            for i in range(buckets)
        ]
