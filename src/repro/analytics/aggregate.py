"""Aggregation helpers — re-exported from :mod:`repro.query.aggregate`.

The implementations moved into the query layer with the aggregation
pushdown (the Aggregate pipeline operator and the cluster's partial
merging need them without importing ``analytics``, which imports the
LogGrep facade).  This module keeps the historical import path alive.
"""

from __future__ import annotations

from ..query.aggregate import (
    _NUMBER_RE,
    AggregatePartial,
    AggregateSpec,
    CountPartial,
    HistogramPartial,
    NumericStats,
    PairsPartial,
    StatsPartial,
    ValuesPartial,
    count_values,
    group_count,
    histogram,
    make_partial,
    merge_partials,
    numeric_stats,
    parse_number,
    stats_from_counts,
    top_k,
)

__all__ = [
    "_NUMBER_RE",
    "AggregatePartial",
    "AggregateSpec",
    "CountPartial",
    "HistogramPartial",
    "NumericStats",
    "PairsPartial",
    "StatsPartial",
    "ValuesPartial",
    "count_values",
    "group_count",
    "histogram",
    "make_partial",
    "merge_partials",
    "numeric_stats",
    "parse_number",
    "stats_from_counts",
    "top_k",
]
