"""Aggregation operators over extracted columns.

Pure functions over value streams; the :class:`~repro.analytics.analyzer.
Analyzer` feeds them columns pulled straight out of Capsules.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Leading numeric run of a value ("40719us" → 40719, "-3.5ms" → -3.5).
_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?")


def count_values(values: Iterable[str]) -> Counter:
    """value → occurrence count."""
    return Counter(values)


def top_k(values: Iterable[str], k: int) -> List[Tuple[str, int]]:
    """The *k* most frequent values with their counts."""
    return Counter(values).most_common(k)


@dataclass(frozen=True)
class NumericStats:
    """Summary statistics of a numeric column."""

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def empty(cls) -> "NumericStats":
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def parse_number(value: str) -> Optional[float]:
    """Leading numeric run of a value, tolerating unit suffixes
    ("40719us" → 40719.0); None when the value has no leading number."""
    match = _NUMBER_RE.match(value)
    return float(match.group(0)) if match else None


def numeric_stats(values: Iterable[str]) -> NumericStats:
    """Parse values as numbers (skipping non-numeric) and summarize."""
    numbers: List[float] = []
    for value in values:
        number = parse_number(value)
        if number is not None:
            numbers.append(number)
    if not numbers:
        return NumericStats.empty()
    numbers.sort()
    return NumericStats(
        count=len(numbers),
        minimum=numbers[0],
        maximum=numbers[-1],
        mean=sum(numbers) / len(numbers),
        p50=_percentile(numbers, 0.50),
        p95=_percentile(numbers, 0.95),
        p99=_percentile(numbers, 0.99),
    )


def group_count(pairs: Iterable[Tuple[str, str]]) -> Dict[str, Counter]:
    """(group key, value) pairs → per-key value counts."""
    out: Dict[str, Counter] = {}
    for key, value in pairs:
        counter = out.get(key)
        if counter is None:
            counter = Counter()
            out[key] = counter
        counter[value] += 1
    return out


def histogram(
    values: Iterable[str], bucket_count: int = 10
) -> List[Tuple[float, float, int]]:
    """Equal-width numeric histogram: (low, high, count) per bucket."""
    numbers: List[float] = []
    for value in values:
        number = parse_number(value)
        if number is not None:
            numbers.append(number)
    if not numbers:
        return []
    low, high = min(numbers), max(numbers)
    if low == high:
        return [(low, high, len(numbers))]
    width = (high - low) / bucket_count
    counts = [0] * bucket_count
    for number in numbers:
        index = min(bucket_count - 1, int((number - low) / width))
        counts[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, counts[i])
        for i in range(bucket_count)
    ]
