"""Schema discovery — re-exported from :mod:`repro.query.schema`.

The implementation moved into the query layer with the aggregation
pushdown (the executor's Aggregate operator resolves fields per block
and must not import ``analytics``).  This module keeps the historical
import path alive.
"""

from __future__ import annotations

from ..query.schema import (
    FieldRef,
    Schema,
    discover_schema,
    schema_of,
)

__all__ = ["FieldRef", "Schema", "discover_schema", "schema_of"]
